// Package mcl is a compiler frontend for a restricted C-like lambda
// language, standing in for the Micro-C sources λ-NIC users write
// (paper §4.1: "users provide one or more lambdas written in a
// restricted C-like language, called Micro-C"). Programs are compiled
// to the internal/mcc IR and from there optimized, linked, and executed
// on the simulated NIC.
//
// The language is restricted the way NPUs are (§3.1b): integers only
// (no floating point), static memory objects (no dynamic allocation),
// and no recursion (rejected by the IR validator). A small example:
//
//	object scratch[64];
//
//	func handler() int {
//		var id int = hdr(7);       // parsed header slot
//		if (id > 2) { id = 0; }
//		scratch[0] = 65 + id;
//		emit(scratch, 0, 1);
//		return 1;                  // STATUS_FORWARD
//	}
package mcl

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokKeyword
	tokPunct // operators and delimiters
)

// token is one lexical token.
type token struct {
	kind tokenKind
	text string
	num  int64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %d", t.num)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords of the language.
var keywords = map[string]bool{
	"func": true, "var": true, "int": true, "if": true, "else": true,
	"while": true, "return": true, "object": true, "hot": true,
	"cold": true, "const": true, "break": true, "continue": true,
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("mcl:%d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace and // and /* */ comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// twoCharOps are the multi-byte operators, longest match first.
var twoCharOps = []string{"==", "!=", "<=", ">=", "<<", ">>", "&&", "||"}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	start := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		start.kind = tokEOF
		return start, nil
	}
	c := l.peekByte()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		startPos := l.pos
		for l.pos < len(l.src) {
			c := rune(l.peekByte())
			if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
				break
			}
			l.advance()
		}
		start.text = l.src[startPos:l.pos]
		if keywords[start.text] {
			start.kind = tokKeyword
		} else {
			start.kind = tokIdent
		}
		return start, nil
	case unicode.IsDigit(rune(c)):
		startPos := l.pos
		for l.pos < len(l.src) {
			c := l.peekByte()
			isHexish := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
				(c >= 'A' && c <= 'F') || c == 'x' || c == 'X'
			if !isHexish {
				break
			}
			l.advance()
		}
		start.text = l.src[startPos:l.pos]
		n, err := strconv.ParseInt(start.text, 0, 64)
		if err != nil {
			// Allow full-range unsigned hex constants.
			u, uerr := strconv.ParseUint(start.text, 0, 64)
			if uerr != nil {
				return token{}, &SyntaxError{Line: start.line, Col: start.col,
					Msg: fmt.Sprintf("bad number %q", start.text)}
			}
			n = int64(u)
		}
		start.kind = tokNumber
		start.num = n
		return start, nil
	case c == '\'':
		// Character literal: 'a' or '\n'-style escapes.
		l.advance()
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated character literal")
		}
		var v byte
		ch := l.advance()
		if ch == '\\' {
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated escape")
			}
			esc := l.advance()
			switch esc {
			case 'n':
				v = '\n'
			case 'r':
				v = '\r'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\', '\'':
				v = esc
			default:
				return token{}, l.errorf("unknown escape \\%c", esc)
			}
		} else {
			v = ch
		}
		if l.pos >= len(l.src) || l.advance() != '\'' {
			return token{}, l.errorf("unterminated character literal")
		}
		start.kind = tokNumber
		start.num = int64(v)
		start.text = string(v)
		return start, nil
	default:
		for _, op := range twoCharOps {
			if l.pos+1 < len(l.src) && l.src[l.pos:l.pos+2] == op {
				l.advance()
				l.advance()
				start.kind = tokPunct
				start.text = op
				return start, nil
			}
		}
		switch c {
		case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^',
			'(', ')', '{', '}', '[', ']', ';', ',':
			l.advance()
			start.kind = tokPunct
			start.text = string(c)
			return start, nil
		}
		return token{}, l.errorf("unexpected character %q", c)
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
