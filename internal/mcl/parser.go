package mcl

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a source file.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokKeyword, "object"):
			o, err := p.objectDecl()
			if err != nil {
				return nil, err
			}
			f.Objects = append(f.Objects, o)
		case p.at(tokKeyword, "const"):
			c, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, c)
		case p.at(tokKeyword, "func"):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, p.errorf("expected object, const, or func declaration, got %s", p.cur())
		}
	}
	return f, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a required token.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = "identifier"
		}
		return token{}, p.errorf("expected %q, got %s", want, p.cur())
	}
	return p.advance(), nil
}

// accept consumes an optional token.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

// objectDecl := "object" IDENT "[" NUM "]" ("hot"|"cold")? ";"
func (p *parser) objectDecl() (*ObjectDecl, error) {
	kw := p.advance() // object
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "["); err != nil {
		return nil, err
	}
	size, err := p.expect(tokNumber, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return nil, err
	}
	hint := ""
	if p.accept(tokKeyword, "hot") {
		hint = "hot"
	} else if p.accept(tokKeyword, "cold") {
		hint = "cold"
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if size.num <= 0 {
		return nil, &SyntaxError{Line: size.line, Col: size.col, Msg: "object size must be positive"}
	}
	return &ObjectDecl{Name: name.text, Size: size.num, Hint: hint, Line: kw.line}, nil
}

// constDecl := "const" IDENT "=" expr ";"
func (p *parser) constDecl() (*ConstDecl, error) {
	kw := p.advance() // const
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	value, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &ConstDecl{Name: name.text, Value: value, Line: kw.line}, nil
}

// funcDecl := "func" IDENT "(" ")" "int"? block
func (p *parser) funcDecl() (*FuncDecl, error) {
	kw := p.advance() // func
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	p.accept(tokKeyword, "int") // the return type is implied
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.text, Body: body, Line: kw.line}, nil
}

// block := "{" stmt* "}"
func (p *parser) block() (*Block, error) {
	open, err := p.expect(tokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &Block{Line: open.line}
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.at(tokPunct, "{"):
		return p.block()
	case p.at(tokKeyword, "var"):
		return p.varDecl()
	case p.at(tokKeyword, "if"):
		return p.ifStmt()
	case p.at(tokKeyword, "while"):
		return p.whileStmt()
	case p.at(tokKeyword, "break"):
		t := p.advance()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Break{Line: t.line}, nil
	case p.at(tokKeyword, "continue"):
		t := p.advance()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Continue{Line: t.line}, nil
	case p.at(tokKeyword, "return"):
		t := p.advance()
		value, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Return{Value: value, Line: t.line}, nil
	case p.at(tokIdent, ""):
		return p.identStmt()
	default:
		return nil, p.errorf("expected statement, got %s", p.cur())
	}
}

// varDecl := "var" IDENT "int"? ("=" expr)? ";"
func (p *parser) varDecl() (Stmt, error) {
	kw := p.advance() // var
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	p.accept(tokKeyword, "int")
	var init Expr
	if p.accept(tokPunct, "=") {
		init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &VarDecl{Name: name.text, Init: init, Line: kw.line}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	kw := p.advance() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Line: kw.line}
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			// else-if chains: wrap the nested if in a block.
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = &Block{Stmts: []Stmt{nested}, Line: kw.line}
		} else {
			node.Else, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return node, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	kw := p.advance() // while
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Line: kw.line}, nil
}

// identStmt disambiguates assignment, object store, and calls.
func (p *parser) identStmt() (Stmt, error) {
	name := p.advance()
	switch {
	case p.at(tokPunct, "="):
		p.advance()
		value, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Assign{Name: name.text, Value: value, Line: name.line}, nil
	case p.at(tokPunct, "["):
		p.advance()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		value, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &StoreStmt{Object: name.text, Index: idx, Value: value, Line: name.line}, nil
	case p.at(tokPunct, "("):
		call, err := p.callAfterName(name)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: call, Line: name.line}, nil
	default:
		return nil, p.errorf("expected '=', '[', or '(' after %q", name.text)
	}
}

func (p *parser) callAfterName(name token) (*Call, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	call := &Call{Name: name.text, Line: name.line}
	for !p.at(tokPunct, ")") {
		if len(call.Args) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
	}
	p.advance() // )
	return call, nil
}

// Expression parsing with precedence climbing.

// binaryPrec maps operators to precedence (higher binds tighter).
var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binaryExpr(1) }

func (p *parser) binaryExpr(minPrec int) (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return left, nil
		}
		prec, ok := binaryPrec[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.text, L: left, R: right, Line: t.line}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &NumLit{Value: t.num, Line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokIdent:
		p.advance()
		switch {
		case p.at(tokPunct, "("):
			return p.callAfterName(t)
		case p.at(tokPunct, "["):
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &LoadExpr{Object: t.text, Index: idx, Line: t.line}, nil
		default:
			return &VarRef{Name: t.text, Line: t.line}, nil
		}
	default:
		return nil, p.errorf("expected expression, got %s", t)
	}
}
