package mcl

import (
	"fmt"

	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
)

// Compiled is the result of compiling one source file.
type Compiled struct {
	Funcs   []*mcc.Function
	Objects []*mcc.Object
}

// CompileError reports a semantic error with its source line.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("mcl:%d: %s", e.Line, e.Msg)
}

func cerrf(line int, format string, args ...any) error {
	return &CompileError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Builtin status-code constants available to every program.
var builtinConsts = map[string]int64{
	"STATUS_DROP":    mcc.StatusDrop,
	"STATUS_FORWARD": mcc.StatusForward,
	"STATUS_TO_HOST": mcc.StatusToHost,
}

// Compile parses and compiles a source file to IR functions and memory
// objects.
func Compile(src string) (*Compiled, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return compileFile(file)
}

// CompileLambda compiles a source file into a Match+Lambda spec: the
// function named entry becomes the lambda entry point; every other
// function becomes a private helper; objects become the lambda's memory
// objects.
func CompileLambda(name string, id uint32, entry string, src string, uses []string) (*matchlambda.LambdaSpec, error) {
	c, err := Compile(src)
	if err != nil {
		return nil, err
	}
	spec := &matchlambda.LambdaSpec{Name: name, ID: id, Objects: c.Objects, Uses: uses}
	for _, f := range c.Funcs {
		if f.Name == entry {
			spec.Entry = f
		} else {
			spec.Helpers = append(spec.Helpers, f)
		}
	}
	if spec.Entry == nil {
		return nil, fmt.Errorf("mcl: no entry function %q in source", entry)
	}
	return spec, nil
}

func compileFile(file *File) (*Compiled, error) {
	out := &Compiled{}
	objects := make(map[string]bool)
	for _, o := range file.Objects {
		if objects[o.Name] {
			return nil, cerrf(o.Line, "duplicate object %q", o.Name)
		}
		objects[o.Name] = true
		obj := &mcc.Object{Name: o.Name, Size: int(o.Size)}
		switch o.Hint {
		case "hot":
			obj.Hint = mcc.HintHot
		case "cold":
			obj.Hint = mcc.HintCold
		}
		out.Objects = append(out.Objects, obj)
	}

	consts := make(map[string]int64, len(builtinConsts))
	for k, v := range builtinConsts {
		consts[k] = v
	}
	for _, c := range file.Consts {
		if _, ok := consts[c.Name]; ok {
			return nil, cerrf(c.Line, "duplicate const %q", c.Name)
		}
		v, err := evalConst(c.Value, consts)
		if err != nil {
			return nil, err
		}
		consts[c.Name] = v
	}

	funcNames := make(map[string]bool, len(file.Funcs))
	for _, fn := range file.Funcs {
		if funcNames[fn.Name] {
			return nil, cerrf(fn.Line, "duplicate function %q", fn.Name)
		}
		funcNames[fn.Name] = true
	}
	for _, fn := range file.Funcs {
		g := &codegen{
			b:       mcc.NewBuilder(fn.Name),
			consts:  consts,
			objects: objects,
			funcs:   funcNames,
			locals:  map[string]mcc.Reg{},
		}
		if err := g.genBlock(fn.Body); err != nil {
			return nil, err
		}
		// Implicit `return STATUS_FORWARD` at the end.
		g.b.MovImm(g.scratch(), mcc.StatusForward)
		g.b.Ret(g.scratch())
		f, err := g.b.Build()
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, f)
	}
	return out, nil
}

// evalConst folds a compile-time constant expression.
func evalConst(e Expr, consts map[string]int64) (int64, error) {
	switch e := e.(type) {
	case *NumLit:
		return e.Value, nil
	case *VarRef:
		if v, ok := consts[e.Name]; ok {
			return v, nil
		}
		return 0, cerrf(e.Line, "constant expression references non-constant %q", e.Name)
	case *Unary:
		v, err := evalConst(e.X, consts)
		if err != nil {
			return 0, err
		}
		if e.Op == "-" {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *Binary:
		l, err := evalConst(e.L, consts)
		if err != nil {
			return 0, err
		}
		r, err := evalConst(e.R, consts)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, cerrf(e.Line, "constant division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, cerrf(e.Line, "constant modulo by zero")
			}
			return l % r, nil
		case "&":
			return l & r, nil
		case "|":
			return l | r, nil
		case "^":
			return l ^ r, nil
		case "<<":
			return l << uint64(r&63), nil
		case ">>":
			return int64(uint64(l) >> uint64(r&63)), nil
		default:
			return 0, cerrf(e.Line, "operator %q not allowed in constants", e.Op)
		}
	default:
		return 0, cerrf(0, "expression not constant")
	}
}

// codegen emits IR for one function.
type codegen struct {
	b       *mcc.Builder
	consts  map[string]int64
	objects map[string]bool
	funcs   map[string]bool

	locals    map[string]mcc.Reg
	nextLocal mcc.Reg // next register for locals (starts at 1)
	tempDepth int

	labelSeq int
	// loop stack for break/continue.
	loops []loopLabels
}

type loopLabels struct{ start, end string }

// Register budget: r1..r14 usable (r0 is the implicit return slot by
// convention, r15 is the zero register). Locals grow up, temps grow
// down.
const (
	firstLocal = mcc.Reg(1)
	lastTemp   = mcc.Reg(14)
)

// scratch returns a register safe for trailing epilogue code.
func (g *codegen) scratch() mcc.Reg { return lastTemp }

func (g *codegen) label(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, g.labelSeq)
}

func (g *codegen) allocLocal(line int, name string) (mcc.Reg, error) {
	if _, ok := g.locals[name]; ok {
		return 0, cerrf(line, "variable %q already declared", name)
	}
	if _, ok := g.consts[name]; ok {
		return 0, cerrf(line, "%q is a constant", name)
	}
	r := firstLocal + g.nextLocal
	if int(r)+g.tempDepth > int(lastTemp) {
		return 0, cerrf(line, "too many local variables (max %d)", int(lastTemp-firstLocal))
	}
	g.nextLocal++
	g.locals[name] = r
	return r, nil
}

// allocTemp reserves an expression temporary.
func (g *codegen) allocTemp(line int) (mcc.Reg, error) {
	r := lastTemp - mcc.Reg(g.tempDepth)
	if r < firstLocal+g.nextLocal {
		return 0, cerrf(line, "expression too complex (register pressure)")
	}
	g.tempDepth++
	return r, nil
}

func (g *codegen) freeTemp() { g.tempDepth-- }

func (g *codegen) genBlock(b *Block) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		return g.genBlock(s)
	case *VarDecl:
		r, err := g.allocLocal(s.Line, s.Name)
		if err != nil {
			return err
		}
		if s.Init == nil {
			g.b.MovImm(r, 0)
			return nil
		}
		return g.genExpr(s.Init, r)
	case *Assign:
		r, ok := g.locals[s.Name]
		if !ok {
			return cerrf(s.Line, "assignment to undeclared variable %q", s.Name)
		}
		return g.genExpr(s.Value, r)
	case *StoreStmt:
		if !g.objects[s.Object] {
			return cerrf(s.Line, "store to unknown object %q", s.Object)
		}
		idx, err := g.allocTemp(s.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(s.Index, idx); err != nil {
			return err
		}
		val, err := g.allocTemp(s.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(s.Value, val); err != nil {
			return err
		}
		g.b.Store(s.Object, idx, 0, val)
		return nil
	case *If:
		return g.genIf(s)
	case *While:
		return g.genWhile(s)
	case *Break:
		if len(g.loops) == 0 {
			return cerrf(s.Line, "break outside loop")
		}
		g.b.Jmp(g.loops[len(g.loops)-1].end)
		return nil
	case *Continue:
		if len(g.loops) == 0 {
			return cerrf(s.Line, "continue outside loop")
		}
		g.b.Jmp(g.loops[len(g.loops)-1].start)
		return nil
	case *Return:
		r, err := g.allocTemp(s.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(s.Value, r); err != nil {
			return err
		}
		g.b.Ret(r)
		return nil
	case *ExprStmt:
		call, ok := s.X.(*Call)
		if !ok {
			return cerrf(s.Line, "expression statement must be a call")
		}
		return g.genCallStmt(call)
	default:
		return cerrf(0, "unknown statement %T", s)
	}
}

func (g *codegen) genIf(s *If) error {
	cond, err := g.allocTemp(s.Line)
	if err != nil {
		return err
	}
	if err := g.genExpr(s.Cond, cond); err != nil {
		g.freeTemp()
		return err
	}
	elseLabel := g.label("else")
	endLabel := g.label("endif")
	g.b.Brz(cond, elseLabel)
	g.freeTemp()
	if err := g.genBlock(s.Then); err != nil {
		return err
	}
	g.b.Jmp(endLabel)
	g.b.Label(elseLabel)
	if s.Else != nil {
		if err := g.genBlock(s.Else); err != nil {
			return err
		}
	}
	g.b.Label(endLabel)
	return nil
}

func (g *codegen) genWhile(s *While) error {
	start := g.label("loop")
	end := g.label("endloop")
	g.b.Label(start)
	cond, err := g.allocTemp(s.Line)
	if err != nil {
		return err
	}
	if err := g.genExpr(s.Cond, cond); err != nil {
		g.freeTemp()
		return err
	}
	g.b.Brz(cond, end)
	g.freeTemp()
	g.loops = append(g.loops, loopLabels{start: start, end: end})
	err = g.genBlock(s.Body)
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.b.Jmp(start)
	g.b.Label(end)
	return nil
}

// genExpr evaluates e into dst.
func (g *codegen) genExpr(e Expr, dst mcc.Reg) error {
	switch e := e.(type) {
	case *NumLit:
		g.b.MovImm(dst, e.Value)
		return nil
	case *VarRef:
		if r, ok := g.locals[e.Name]; ok {
			g.b.Mov(dst, r)
			return nil
		}
		if v, ok := g.consts[e.Name]; ok {
			g.b.MovImm(dst, v)
			return nil
		}
		return cerrf(e.Line, "undeclared identifier %q", e.Name)
	case *LoadExpr:
		if !g.objects[e.Object] {
			return cerrf(e.Line, "load from unknown object %q", e.Object)
		}
		idx, err := g.allocTemp(e.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(e.Index, idx); err != nil {
			return err
		}
		g.b.Load(dst, e.Object, idx, 0)
		return nil
	case *Unary:
		if err := g.genExpr(e.X, dst); err != nil {
			return err
		}
		switch e.Op {
		case "-":
			g.b.Sub(dst, mcc.RegZero, dst)
		case "!":
			g.b.Eq(dst, dst, mcc.RegZero)
		default:
			return cerrf(e.Line, "unknown unary operator %q", e.Op)
		}
		return nil
	case *Binary:
		return g.genBinary(e, dst)
	case *Call:
		return g.genCallValue(e, dst)
	default:
		return cerrf(0, "unknown expression %T", e)
	}
}

func (g *codegen) genBinary(e *Binary, dst mcc.Reg) error {
	if err := g.genExpr(e.L, dst); err != nil {
		return err
	}
	t, err := g.allocTemp(e.Line)
	if err != nil {
		return err
	}
	defer g.freeTemp()
	if err := g.genExpr(e.R, t); err != nil {
		return err
	}
	switch e.Op {
	case "+":
		g.b.Add(dst, dst, t)
	case "-":
		g.b.Sub(dst, dst, t)
	case "*":
		g.b.Mul(dst, dst, t)
	case "&":
		g.b.And(dst, dst, t)
	case "|":
		g.b.Or(dst, dst, t)
	case "^":
		g.b.Xor(dst, dst, t)
	case "<<":
		g.b.Shl(dst, dst, t)
	case ">>":
		g.b.Shr(dst, dst, t)
	case "==":
		g.b.Eq(dst, dst, t)
	case "!=":
		g.b.Eq(dst, dst, t)
		g.b.Eq(dst, dst, mcc.RegZero)
	case "<":
		g.b.Lt(dst, dst, t)
	case ">":
		g.b.Lt(dst, t, dst)
	case "<=":
		g.b.Lt(dst, t, dst)
		g.b.Eq(dst, dst, mcc.RegZero)
	case ">=":
		g.b.Lt(dst, dst, t)
		g.b.Eq(dst, dst, mcc.RegZero)
	case "&&":
		// (L != 0) & (R != 0)
		g.b.Eq(dst, dst, mcc.RegZero)
		g.b.Eq(dst, dst, mcc.RegZero)
		g.b.Eq(t, t, mcc.RegZero)
		g.b.Eq(t, t, mcc.RegZero)
		g.b.And(dst, dst, t)
	case "||":
		g.b.Or(dst, dst, t)
		g.b.Eq(dst, dst, mcc.RegZero)
		g.b.Eq(dst, dst, mcc.RegZero)
	case "/", "%":
		return g.genDivMod(e, dst, t)
	default:
		return cerrf(e.Line, "unknown operator %q", e.Op)
	}
	return nil
}

// genDivMod lowers division and modulo to repeated subtraction — NPUs
// have no integer divide (§3.1b). Operands must be non-negative; a
// non-positive divisor makes the quotient loop exit immediately with
// quotient 0 and remainder = dividend.
func (g *codegen) genDivMod(e *Binary, dst, divisor mcc.Reg) error {
	q, err := g.allocTemp(e.Line)
	if err != nil {
		return err
	}
	defer g.freeTemp()
	cond, err := g.allocTemp(e.Line)
	if err != nil {
		return err
	}
	defer g.freeTemp()
	one, err := g.allocTemp(e.Line)
	if err != nil {
		return err
	}
	defer g.freeTemp()
	loop := g.label("div")
	done := g.label("divdone")
	g.b.MovImm(q, 0)
	g.b.MovImm(one, 1)
	g.b.Label(loop)
	// Stop when divisor <= 0 (guard) or dividend < divisor.
	g.b.Lt(cond, mcc.RegZero, divisor) // divisor > 0
	g.b.Brz(cond, done)
	g.b.Lt(cond, dst, divisor)
	g.b.Brnz(cond, done)
	g.b.Sub(dst, dst, divisor)
	g.b.Add(q, q, one)
	g.b.Jmp(loop)
	g.b.Label(done)
	if e.Op == "/" {
		g.b.Mov(dst, q)
	}
	// For "%", dst already holds the remainder.
	return nil
}

// Builtin signatures: name -> arg count (-1 = special-cased).
var builtins = map[string]int{
	"hdr": 1, "sethdr": 2, "pkt": 1, "pktlen": 0,
	"emit": 3, "emitbyte": 1, "memcpy": 5, "gray": 5, "hash": 3,
	"loadw": 2, "storew": 3,
}

// valueBuiltins return a value and may appear in expressions.
var valueBuiltins = map[string]bool{
	"hdr": true, "pkt": true, "pktlen": true, "hash": true, "loadw": true,
}

// genCallStmt compiles a call in statement position.
func (g *codegen) genCallStmt(call *Call) error {
	if _, ok := builtins[call.Name]; ok {
		if valueBuiltins[call.Name] {
			// Evaluate for effect into a temp and discard.
			t, err := g.allocTemp(call.Line)
			if err != nil {
				return err
			}
			defer g.freeTemp()
			return g.genCallValue(call, t)
		}
		return g.genVoidBuiltin(call)
	}
	if g.funcs[call.Name] {
		if len(call.Args) != 0 {
			return cerrf(call.Line, "user functions take no arguments")
		}
		g.b.Call(call.Name)
		return nil
	}
	return cerrf(call.Line, "unknown function %q", call.Name)
}

// genCallValue compiles a value-returning builtin into dst.
func (g *codegen) genCallValue(call *Call, dst mcc.Reg) error {
	argc, ok := builtins[call.Name]
	if !ok {
		if g.funcs[call.Name] {
			return cerrf(call.Line, "user function %q returns no value", call.Name)
		}
		return cerrf(call.Line, "unknown function %q", call.Name)
	}
	if !valueBuiltins[call.Name] {
		return cerrf(call.Line, "builtin %q returns no value", call.Name)
	}
	if len(call.Args) != argc {
		return cerrf(call.Line, "%s expects %d arguments, got %d", call.Name, argc, len(call.Args))
	}
	switch call.Name {
	case "hdr":
		slot, err := evalConst(call.Args[0], g.consts)
		if err != nil {
			return cerrf(call.Line, "hdr slot must be a constant")
		}
		g.b.HdrGet(dst, slot)
		return nil
	case "pktlen":
		g.b.PktLen(dst)
		return nil
	case "pkt":
		t, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[0], t); err != nil {
			return err
		}
		g.b.PktLoad(dst, t, 0)
		return nil
	case "hash":
		obj, off, n, err := g.objArgs(call, 0)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		defer g.freeTemp()
		g.b.Hash(dst, obj, off, n)
		return nil
	case "loadw":
		obj, err := g.objectArg(call, 0)
		if err != nil {
			return err
		}
		t, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[1], t); err != nil {
			return err
		}
		g.b.LoadW(dst, obj, t, 0)
		return nil
	default:
		return cerrf(call.Line, "builtin %q not valid here", call.Name)
	}
}

// genVoidBuiltin compiles a side-effecting builtin.
func (g *codegen) genVoidBuiltin(call *Call) error {
	argc := builtins[call.Name]
	if len(call.Args) != argc {
		return cerrf(call.Line, "%s expects %d arguments, got %d", call.Name, argc, len(call.Args))
	}
	switch call.Name {
	case "sethdr":
		slot, err := evalConst(call.Args[0], g.consts)
		if err != nil {
			return cerrf(call.Line, "sethdr slot must be a constant")
		}
		t, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[1], t); err != nil {
			return err
		}
		g.b.HdrSet(slot, t)
		return nil
	case "emitbyte":
		t, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[0], t); err != nil {
			return err
		}
		g.b.EmitByte(t)
		return nil
	case "emit":
		obj, off, n, err := g.objArgs(call, 0)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		defer g.freeTemp()
		g.b.Emit(obj, off, n)
		return nil
	case "storew":
		obj, err := g.objectArg(call, 0)
		if err != nil {
			return err
		}
		off, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[1], off); err != nil {
			return err
		}
		v, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[2], v); err != nil {
			return err
		}
		g.b.StoreW(obj, off, 0, v)
		return nil
	case "memcpy", "gray":
		// (dstObj, dstOff, srcObj, srcOff, n); srcObj may be `pkt`.
		dstObj, err := g.objectArg(call, 0)
		if err != nil {
			return err
		}
		srcObj, err := g.sourceArg(call, 2)
		if err != nil {
			return err
		}
		doff, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[1], doff); err != nil {
			return err
		}
		soff, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[3], soff); err != nil {
			return err
		}
		n, err := g.allocTemp(call.Line)
		if err != nil {
			return err
		}
		defer g.freeTemp()
		if err := g.genExpr(call.Args[4], n); err != nil {
			return err
		}
		if call.Name == "memcpy" {
			g.b.Memcpy(dstObj, doff, srcObj, soff, n)
		} else {
			g.b.Gray(dstObj, doff, srcObj, soff, n)
		}
		return nil
	default:
		return cerrf(call.Line, "builtin %q not valid as a statement", call.Name)
	}
}

// objectArg resolves an argument that must name a declared object.
func (g *codegen) objectArg(call *Call, idx int) (string, error) {
	ref, ok := call.Args[idx].(*VarRef)
	if !ok || !g.objects[ref.Name] {
		return "", cerrf(call.Line, "%s argument %d must name an object", call.Name, idx+1)
	}
	return ref.Name, nil
}

// sourceArg resolves an argument that names an object or the request
// payload (`pkt`).
func (g *codegen) sourceArg(call *Call, idx int) (string, error) {
	ref, ok := call.Args[idx].(*VarRef)
	if !ok {
		return "", cerrf(call.Line, "%s argument %d must name an object or pkt", call.Name, idx+1)
	}
	if ref.Name == "pkt" {
		return mcc.PayloadObject, nil
	}
	if !g.objects[ref.Name] {
		return "", cerrf(call.Line, "%s argument %d: unknown object %q", call.Name, idx+1, ref.Name)
	}
	return ref.Name, nil
}

// objArgs resolves (object, offExpr, lenExpr) argument triples; the
// caller must freeTemp twice.
func (g *codegen) objArgs(call *Call, idx int) (string, mcc.Reg, mcc.Reg, error) {
	obj, err := g.objectArg(call, idx)
	if err != nil {
		return "", 0, 0, err
	}
	off, err := g.allocTemp(call.Line)
	if err != nil {
		return "", 0, 0, err
	}
	if err := g.genExpr(call.Args[idx+1], off); err != nil {
		g.freeTemp()
		return "", 0, 0, err
	}
	n, err := g.allocTemp(call.Line)
	if err != nil {
		g.freeTemp()
		return "", 0, 0, err
	}
	if err := g.genExpr(call.Args[idx+2], n); err != nil {
		g.freeTemp()
		g.freeTemp()
		return "", 0, 0, err
	}
	return obj, off, n, nil
}
