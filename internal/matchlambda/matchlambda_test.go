package matchlambda

import (
	"errors"
	"testing"
	"testing/quick"

	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
)

// echoSpec builds a lambda that emits a fixed byte read from its
// object.
func echoSpec(t *testing.T, name string, id uint32, value byte, uses ...string) *LambdaSpec {
	t.Helper()
	obj := name + "_mem"
	b := mcc.NewBuilder(name)
	b.MovImm(1, 0)
	b.Load(2, obj, 1, 0)
	b.EmitByte(2)
	b.MovImm(3, mcc.StatusForward)
	b.Ret(3)
	return &LambdaSpec{
		Name:    name,
		ID:      id,
		Entry:   b.MustBuild(),
		Objects: []*mcc.Object{{Name: obj, Size: 4, Init: []byte{value}}},
		Uses:    uses,
	}
}

func stdHeaders() []HeaderSpec {
	return []HeaderSpec{
		{Name: "webreq", Fields: []FieldSpec{{Slot: mcc.FieldArg0, Offset: 0, Bytes: 2}}},
		{Name: "kvreq", Fields: []FieldSpec{
			{Slot: mcc.FieldArg0, Offset: 0, Bytes: 1},
			{Slot: mcc.FieldArg1, Offset: 1, Bytes: 4},
		}},
	}
}

func TestComposeAndDispatch(t *testing.T) {
	p, err := Compose([]*LambdaSpec{
		echoSpec(t, "alpha", 10, 'A', "webreq"),
		echoSpec(t, "beta", 20, 'B'),
	}, ComposeOptions{Headers: stdHeaders()})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	e, err := mcc.Link(p, mcc.LinkOptions{})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	for _, tc := range []struct {
		id   uint32
		want byte
	}{{10, 'A'}, {20, 'B'}} {
		resp, err := e.Execute(&nicsim.Request{LambdaID: tc.id, Payload: []byte{0, 42}, Packets: 1})
		if err != nil {
			t.Fatalf("Execute(%d): %v", tc.id, err)
		}
		if len(resp.Payload) != 1 || resp.Payload[0] != tc.want {
			t.Errorf("lambda %d -> %v, want [%c]", tc.id, resp.Payload, tc.want)
		}
	}
}

func TestComposeNaivePlanShape(t *testing.T) {
	p, err := Compose([]*LambdaSpec{
		echoSpec(t, "alpha", 10, 'A', "webreq"),
		echoSpec(t, "beta", 20, 'B'),
	}, ComposeOptions{Headers: stdHeaders()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Match.Tables); got != 2 {
		t.Errorf("naive tables = %d, want one per lambda", got)
	}
	if got := len(p.Match.Parsers); got != 2 {
		t.Errorf("parsers = %d, want one per known header", got)
	}
	if !p.Match.UsedParsers["__parse_webreq"] {
		t.Error("webreq parser not marked used")
	}
	if p.Match.UsedParsers["__parse_kvreq"] {
		t.Error("kvreq parser wrongly marked used")
	}
	if p.Func(mcc.MatchFunction) == nil {
		t.Error("__match not generated")
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose(nil, ComposeOptions{}); err == nil {
		t.Error("Compose with no lambdas succeeded")
	}
	if _, err := Compose([]*LambdaSpec{{Name: "x"}}, ComposeOptions{}); err == nil {
		t.Error("Compose with entry-less lambda succeeded")
	}
	// Duplicate IDs rejected.
	_, err := Compose([]*LambdaSpec{
		echoSpec(t, "a", 1, 'a'),
		echoSpec(t, "b", 1, 'b'),
	}, ComposeOptions{})
	if err == nil {
		t.Error("Compose with duplicate IDs succeeded")
	}
}

func TestGeneratedParserExtractsFields(t *testing.T) {
	h := HeaderSpec{Name: "kvreq", Fields: []FieldSpec{
		{Slot: mcc.FieldArg0, Offset: 0, Bytes: 1},
		{Slot: mcc.FieldArg1, Offset: 1, Bytes: 4},
	}}
	// A lambda that echoes the parsed fields.
	b := mcc.NewBuilder("probe")
	b.HdrGet(1, mcc.FieldArg0)
	b.EmitByte(1)
	b.HdrGet(1, mcc.FieldArg1)
	b.EmitByte(1)
	b.Ret(1)
	p, err := Compose([]*LambdaSpec{{
		Name: "probe", ID: 5, Entry: b.MustBuild(), Uses: []string{"kvreq"},
	}}, ComposeOptions{Headers: []HeaderSpec{h}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := mcc.Link(p, mcc.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// payload: op=7, key=0x00000009
	resp, err := e.Execute(&nicsim.Request{LambdaID: 5, Payload: []byte{7, 0, 0, 0, 9}, Packets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Payload) != 2 || resp.Payload[0] != 7 || resp.Payload[1] != 9 {
		t.Errorf("parsed fields = %v, want [7 9]", resp.Payload)
	}
}

func TestGeneratedParserShortPayloadSafe(t *testing.T) {
	h := HeaderSpec{Name: "wide", Fields: []FieldSpec{{Slot: mcc.FieldArg0, Offset: 0, Bytes: 8}}}
	b := mcc.NewBuilder("probe")
	b.HdrGet(1, mcc.FieldArg0)
	b.Ret(1)
	p, err := Compose([]*LambdaSpec{{Name: "probe", ID: 1, Entry: b.MustBuild(), Uses: []string{"wide"}}},
		ComposeOptions{Headers: []HeaderSpec{h}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := mcc.Link(p, mcc.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Empty payload: parser must skip the field, not fault.
	if _, err := e.Execute(&nicsim.Request{LambdaID: 1, Payload: nil, Packets: 1}); err != nil {
		t.Fatalf("short payload: %v", err)
	}
}

func TestHeaderSpecValidate(t *testing.T) {
	bad := []HeaderSpec{
		{Name: ""},
		{Name: "h", Fields: []FieldSpec{{Slot: mcc.FieldWorkloadID, Offset: 0, Bytes: 1}}}, // reserved slot
		{Name: "h", Fields: []FieldSpec{{Slot: mcc.FieldArg0, Offset: 0, Bytes: 9}}},
		{Name: "h", Fields: []FieldSpec{{Slot: mcc.FieldArg0, Offset: -1, Bytes: 1}}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, h)
		}
	}
}

func TestMatchReductionOnComposedProgram(t *testing.T) {
	p, err := Compose([]*LambdaSpec{
		echoSpec(t, "alpha", 10, 'A', "webreq"),
		echoSpec(t, "beta", 20, 'B', "webreq"),
	}, ComposeOptions{Headers: stdHeaders()})
	if err != nil {
		t.Fatal(err)
	}
	before := p.StaticInstructions()
	opt, results, err := mcc.Optimize(p, mcc.AllPasses())
	if err != nil {
		t.Fatal(err)
	}
	if opt.StaticInstructions() >= before {
		t.Errorf("optimization did not shrink composed program: %d -> %d", before, opt.StaticInstructions())
	}
	if opt.Func("__parse_kvreq") != nil {
		t.Error("unused kvreq parser survived")
	}
	// Both lambdas still dispatch correctly.
	e, err := mcc.Link(opt, mcc.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Execute(&nicsim.Request{LambdaID: 20, Payload: []byte{1, 2}, Packets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Payload) != 1 || resp.Payload[0] != 'B' {
		t.Errorf("beta -> %v", resp.Payload)
	}
	if len(results) != 4 {
		t.Errorf("results = %d, want 4 entries", len(results))
	}
}

func TestWireHeaderRoundTrip(t *testing.T) {
	h := WireHeader{
		Version:    Version1,
		Flags:      FlagResponse | FlagRDMA,
		WorkloadID: 0xDEADBEEF,
		RequestID:  0x0123456789ABCDEF,
		Seq:        3,
		Total:      7,
		PayloadLen: 4096,
	}
	pkt := h.Encode(nil)
	pkt = append(pkt, []byte("payload")...)
	got, rest, err := DecodeWireHeader(pkt)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != h {
		t.Errorf("round trip: got %+v, want %+v", got, h)
	}
	if string(rest) != "payload" {
		t.Errorf("rest = %q", rest)
	}
	if !got.IsResponse() || got.IsError() {
		t.Error("flag accessors wrong")
	}
}

func TestWireHeaderErrors(t *testing.T) {
	if _, _, err := DecodeWireHeader([]byte{1, 2, 3}); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, WireHeaderSize)
	if _, _, err := DecodeWireHeader(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}
	h := WireHeader{Version: 9}
	pkt := h.Encode(nil)
	if _, _, err := DecodeWireHeader(pkt); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
}

func TestWireHeaderRoundTripProperty(t *testing.T) {
	f := func(flags uint8, wid uint32, rid uint64, seq, total uint16, plen uint32, payload []byte) bool {
		h := WireHeader{
			Version: Version1, Flags: flags, WorkloadID: wid,
			RequestID: rid, Seq: seq, Total: total, PayloadLen: plen,
		}
		pkt := h.Encode(nil)
		pkt = append(pkt, payload...)
		got, rest, err := DecodeWireHeader(pkt)
		if err != nil {
			return false
		}
		return got == h && string(rest) == string(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestComposedJumpTableDispatch closes the loop from Compose through
// the optimizer to the compiled engine: the reduced match stage the
// optimizer emits for a composed program must compile into the
// WorkloadID jump table, and dispatch results must match the
// interpreter exactly — including the unknown-ID miss path.
func TestComposedJumpTableDispatch(t *testing.T) {
	build := func(t *testing.T) *mcc.Program {
		p, err := Compose([]*LambdaSpec{
			echoSpec(t, "alpha", 10, 'A', "webreq"),
			echoSpec(t, "beta", 20, 'B'),
			echoSpec(t, "gamma", 30, 'C', "kvreq"),
		}, ComposeOptions{Headers: stdHeaders()})
		if err != nil {
			t.Fatalf("Compose: %v", err)
		}
		opt, _, err := mcc.Optimize(p, mcc.AllPasses())
		if err != nil {
			t.Fatalf("Optimize: %v", err)
		}
		return opt
	}
	compiled, err := mcc.Link(build(t), mcc.LinkOptions{})
	if err != nil {
		t.Fatalf("Link compiled: %v", err)
	}
	interp, err := mcc.Link(build(t), mcc.LinkOptions{Engine: mcc.EngineInterp})
	if err != nil {
		t.Fatalf("Link interp: %v", err)
	}
	if kind := compiled.DispatchKind(); kind != "jump-table" {
		t.Fatalf("composed+optimized DispatchKind = %q, want jump-table", kind)
	}
	for _, id := range []uint32{10, 20, 30, 99} {
		req := &nicsim.Request{LambdaID: id, Payload: []byte{0, 42, 0, 0, 0}, Packets: 1}
		cresp, cerr := compiled.Execute(req)
		iresp, ierr := interp.Execute(req)
		// The unknown ID falls off the match chain and is forwarded to
		// the host (StatusToHost) rather than faulting, in both engines.
		if (cerr == nil) != (ierr == nil) {
			t.Fatalf("id %d: error divergence: compiled=%v interp=%v", id, cerr, ierr)
		}
		if cerr != nil {
			t.Fatalf("id %d: %v", id, cerr)
		}
		if string(cresp.Payload) != string(iresp.Payload) {
			t.Errorf("id %d: payload divergence: compiled=%q interp=%q", id, cresp.Payload, iresp.Payload)
		}
		if cresp.Stats != iresp.Stats {
			t.Errorf("id %d: stats divergence:\ncompiled %+v\ninterp   %+v", id, cresp.Stats, iresp.Stats)
		}
	}
}
