package matchlambda

import (
	"testing"

	"lambdanic/internal/mcc"
)

func benchSpecs(b *testing.B) []*LambdaSpec {
	b.Helper()
	var specs []*LambdaSpec
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		bd := mcc.NewBuilder(name)
		bd.HdrGet(1, mcc.FieldArg0)
		bd.EmitByte(1)
		bd.Ret(1)
		specs = append(specs, &LambdaSpec{
			Name: name, ID: uint32(i + 1), Entry: bd.MustBuild(),
			Uses: []string{"h"},
		})
	}
	return specs
}

func BenchmarkCompose(b *testing.B) {
	headers := []HeaderSpec{{Name: "h", Fields: []FieldSpec{{Slot: mcc.FieldArg0, Offset: 0, Bytes: 2}}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(benchSpecs(b), ComposeOptions{Headers: headers}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWireCodecAllocs gates the wire header hot path: encoding into a
// reused buffer and decoding must both be allocation-free, since the
// transport data plane runs them per packet.
func TestWireCodecAllocs(t *testing.T) {
	h := WireHeader{Version: Version1, WorkloadID: 7, RequestID: 42, Total: 1}
	buf := h.Encode(nil)

	enc := testing.AllocsPerRun(200, func() {
		buf = h.Encode(buf[:0])
	})
	if enc != 0 {
		t.Errorf("Encode into reused buffer allocates %.1f allocs/op, want 0", enc)
	}

	dec := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeWireHeader(buf); err != nil {
			t.Fatal(err)
		}
	})
	if dec != 0 {
		t.Errorf("DecodeWireHeader allocates %.1f allocs/op, want 0", dec)
	}
}

func BenchmarkGenerateParser(b *testing.B) {
	h := HeaderSpec{Name: "kvreq", Fields: []FieldSpec{
		{Slot: mcc.FieldArg0, Offset: 0, Bytes: 1},
		{Slot: mcc.FieldArg1, Offset: 1, Bytes: 4},
	}}
	for i := 0; i < b.N; i++ {
		if _, err := GenerateParser(h); err != nil {
			b.Fatal(err)
		}
	}
}
