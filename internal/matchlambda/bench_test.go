package matchlambda

import (
	"testing"

	"lambdanic/internal/mcc"
)

func benchSpecs(b *testing.B) []*LambdaSpec {
	b.Helper()
	var specs []*LambdaSpec
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		bd := mcc.NewBuilder(name)
		bd.HdrGet(1, mcc.FieldArg0)
		bd.EmitByte(1)
		bd.Ret(1)
		specs = append(specs, &LambdaSpec{
			Name: name, ID: uint32(i + 1), Entry: bd.MustBuild(),
			Uses: []string{"h"},
		})
	}
	return specs
}

func BenchmarkCompose(b *testing.B) {
	headers := []HeaderSpec{{Name: "h", Fields: []FieldSpec{{Slot: mcc.FieldArg0, Offset: 0, Bytes: 2}}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(benchSpecs(b), ComposeOptions{Headers: headers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateParser(b *testing.B) {
	h := HeaderSpec{Name: "kvreq", Fields: []FieldSpec{
		{Slot: mcc.FieldArg0, Offset: 0, Bytes: 1},
		{Slot: mcc.FieldArg1, Offset: 1, Bytes: 4},
	}}
	for i := 0; i < b.N; i++ {
		if _, err := GenerateParser(h); err != nil {
			b.Fatal(err)
		}
	}
}
