package matchlambda

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// WireHeader is the λ-NIC header the gateway inserts into every request
// so the NIC's match stage can select the destination lambda (§4.1).
// Multi-packet RPCs carry fragmentation fields the NIC uses for
// reordering (§4.2.1 D3).
//
// Layout (24 bytes, big-endian):
//
//	magic(2) version(1) flags(1) workloadID(4) requestID(8)
//	seq(2) total(2) payloadLen(4)
type WireHeader struct {
	Version    uint8
	Flags      uint8
	WorkloadID uint32
	RequestID  uint64
	// Seq is this fragment's index; Total the fragment count.
	Seq, Total uint16
	// PayloadLen is the full message payload length across fragments.
	PayloadLen uint32
}

// WireHeaderSize is the encoded header length in bytes.
const WireHeaderSize = 24

// Magic identifies λ-NIC packets on the wire.
const Magic = 0x4C4E // "LN"

// Wire header versions.
const Version1 = 1

// Flag bits.
const (
	// FlagResponse marks a lambda's reply.
	FlagResponse uint8 = 1 << iota
	// FlagRDMA marks a fragment carried over the RDMA path into NIC
	// memory rather than through parse+match.
	FlagRDMA
	// FlagError marks a response conveying an execution error.
	FlagError
)

// Wire header errors.
var (
	ErrShortPacket = errors.New("matchlambda: packet shorter than wire header")
	ErrBadMagic    = errors.New("matchlambda: bad magic")
	ErrBadVersion  = errors.New("matchlambda: unsupported version")
)

// Encode appends the encoded header to dst and returns the result.
func (h *WireHeader) Encode(dst []byte) []byte {
	var buf [WireHeaderSize]byte
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	buf[2] = h.Version
	buf[3] = h.Flags
	binary.BigEndian.PutUint32(buf[4:8], h.WorkloadID)
	binary.BigEndian.PutUint64(buf[8:16], h.RequestID)
	binary.BigEndian.PutUint16(buf[16:18], h.Seq)
	binary.BigEndian.PutUint16(buf[18:20], h.Total)
	binary.BigEndian.PutUint32(buf[20:24], h.PayloadLen)
	return append(dst, buf[:]...)
}

// DecodeWireHeader parses a packet's header, returning the header and
// the remaining payload bytes.
func DecodeWireHeader(pkt []byte) (WireHeader, []byte, error) {
	if len(pkt) < WireHeaderSize {
		return WireHeader{}, nil, fmt.Errorf("%w: %d bytes", ErrShortPacket, len(pkt))
	}
	if binary.BigEndian.Uint16(pkt[0:2]) != Magic {
		return WireHeader{}, nil, ErrBadMagic
	}
	h := WireHeader{
		Version:    pkt[2],
		Flags:      pkt[3],
		WorkloadID: binary.BigEndian.Uint32(pkt[4:8]),
		RequestID:  binary.BigEndian.Uint64(pkt[8:16]),
		Seq:        binary.BigEndian.Uint16(pkt[16:18]),
		Total:      binary.BigEndian.Uint16(pkt[18:20]),
		PayloadLen: binary.BigEndian.Uint32(pkt[20:24]),
	}
	if h.Version != Version1 {
		return WireHeader{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, h.Version)
	}
	return h, pkt[WireHeaderSize:], nil
}

// IsResponse reports whether the response flag is set.
func (h *WireHeader) IsResponse() bool { return h.Flags&FlagResponse != 0 }

// IsError reports whether the error flag is set.
func (h *WireHeader) IsError() bool { return h.Flags&FlagError != 0 }
