// Package matchlambda implements λ-NIC's Match+Lambda programming
// abstraction (paper §4.1): users supply lambdas (mcc functions plus
// helpers and memory objects) and declare which application headers
// each lambda reads; the composer pairs them with a synthesized parse
// stage and a P4-style match stage into a single program that the
// workload manager compiles for the NIC.
//
// The composition mirrors the paper's pipeline exactly:
//
//   - each lambda gets its own route/dispatch table in the naive match
//     plan ("the naive implementation adds a separate table for
//     managing routes for each lambda", §6.4);
//   - a parser function is generated per declared header, extracting
//     fields into the header slots lambdas read with OpHdrGet;
//   - the workload manager later runs mcc.Optimize to apply lambda
//     coalescing, match reduction, and memory stratification (§5.1).
package matchlambda

import (
	"errors"
	"fmt"

	"lambdanic/internal/mcc"
)

// FieldSpec extracts one big-endian header field from the request
// payload into a header slot.
type FieldSpec struct {
	// Slot is the mcc header slot (mcc.FieldArg0 etc.) the value lands
	// in. Slots below mcc.FieldPayloadLen are reserved for the wire
	// header and may not be written by parsers.
	Slot int
	// Offset is the byte offset within the payload.
	Offset int
	// Bytes is the field width (1-8).
	Bytes int
}

// HeaderSpec describes one application-level header a lambda may use.
type HeaderSpec struct {
	// Name identifies the header; the generated parser is named
	// "__parse_<Name>".
	Name   string
	Fields []FieldSpec
}

// ParserName returns the generated parser function's name.
func (h HeaderSpec) ParserName() string { return "__parse_" + h.Name }

// Validate checks the spec.
func (h HeaderSpec) Validate() error {
	if h.Name == "" {
		return errors.New("matchlambda: header has no name")
	}
	for _, f := range h.Fields {
		if f.Slot < mcc.FieldPayloadLen || f.Slot >= mcc.NumFields {
			return fmt.Errorf("matchlambda: header %q writes reserved or invalid slot %d", h.Name, f.Slot)
		}
		if f.Bytes < 1 || f.Bytes > 8 {
			return fmt.Errorf("matchlambda: header %q field width %d out of range", h.Name, f.Bytes)
		}
		if f.Offset < 0 {
			return fmt.Errorf("matchlambda: header %q field offset %d negative", h.Name, f.Offset)
		}
	}
	return nil
}

// LambdaSpec is one user-provided lambda: the Micro-C-style entry
// function (paper Listing 1/2), private helper functions, persistent
// memory objects, and the headers it reads.
type LambdaSpec struct {
	// Name is the human-readable workload name.
	Name string
	// ID is the workload identifier the gateway stamps into requests;
	// assigned by the workload manager (§4.1).
	ID uint32
	// Entry is the top-level function invoked by the match stage.
	Entry *mcc.Function
	// Helpers are private functions the entry may call. Separately
	// compiled lambdas each carry their own copies of common helpers —
	// exactly what lambda coalescing later deduplicates.
	Helpers []*mcc.Function
	// Objects are the lambda's memory objects (flat address space, D2).
	Objects []*mcc.Object
	// Uses lists the application headers the lambda reads; the composer
	// generates parsers for them. Headers declared by no lambda still
	// get parsers in the naive program (the generic parse logic the
	// paper prepends) and are pruned by match reduction.
	Uses []string
}

// Validate checks the spec is self-consistent.
func (s *LambdaSpec) Validate() error {
	if s.Name == "" {
		return errors.New("matchlambda: lambda has no name")
	}
	if s.Entry == nil {
		return fmt.Errorf("matchlambda: lambda %q has no entry function", s.Name)
	}
	return nil
}

// ComposeOptions tune composition.
type ComposeOptions struct {
	// Headers is the full set of known application headers. The naive
	// program parses all of them ("prepends a generic P4 packet-parsing
	// logic", §4.1); match reduction keeps only the used ones.
	Headers []HeaderSpec
	// Shared are library functions linked once into the image (the
	// shared runtime every lambda calls), as opposed to per-lambda
	// helpers.
	Shared []*mcc.Function
	// SharedObjects are library-owned memory objects linked once.
	SharedObjects []*mcc.Object
}

// Compose pairs the lambdas and the match stage into one naive
// Match+Lambda program (paper §4.1 end: "the workload manager pairs the
// lambdas and match stage into a single Match+Lambda program").
func Compose(specs []*LambdaSpec, opts ComposeOptions) (*mcc.Program, error) {
	if len(specs) == 0 {
		return nil, errors.New("matchlambda: no lambdas to compose")
	}
	p := mcc.NewProgram()

	used := make(map[string]bool)
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		for _, h := range s.Uses {
			used[h] = true
		}
	}

	// Generate parsers for every known header.
	plan := &mcc.MatchPlan{UsedParsers: make(map[string]bool)}
	for _, h := range opts.Headers {
		if err := h.Validate(); err != nil {
			return nil, err
		}
		pf, err := GenerateParser(h)
		if err != nil {
			return nil, err
		}
		if err := p.AddFunc(pf); err != nil {
			return nil, err
		}
		plan.Parsers = append(plan.Parsers, pf.Name)
		if used[h.Name] {
			plan.UsedParsers[pf.Name] = true
		}
	}

	// Link shared library code and state once.
	for _, f := range opts.Shared {
		if err := p.AddFunc(f); err != nil {
			return nil, err
		}
	}
	for _, o := range opts.SharedObjects {
		if err := p.AddObject(o); err != nil {
			return nil, err
		}
	}

	// Add lambda code, objects, entries, and per-lambda route tables.
	for _, s := range specs {
		if err := p.AddFunc(s.Entry); err != nil {
			return nil, err
		}
		for _, h := range s.Helpers {
			if err := p.AddFunc(h); err != nil {
				return nil, err
			}
		}
		for _, o := range s.Objects {
			if err := p.AddObject(o); err != nil {
				return nil, err
			}
		}
		if err := p.AddEntry(s.ID, s.Entry.Name); err != nil {
			return nil, err
		}
		plan.Tables = append(plan.Tables, mcc.MatchTable{
			Name:  "route_" + s.Name,
			Field: mcc.FieldWorkloadID,
			Entries: []mcc.MatchEntry{
				{Value: int64(s.ID), Action: s.Entry.Name},
			},
		})
	}
	p.Match = plan

	mf, err := mcc.GenerateMatch(plan)
	if err != nil {
		return nil, err
	}
	if err := p.AddFunc(mf); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("matchlambda: composed program invalid: %w", err)
	}
	return p, nil
}

// Extent returns the number of payload bytes the full header occupies.
func (h HeaderSpec) Extent() int {
	extent := 0
	for _, f := range h.Fields {
		if end := f.Offset + f.Bytes; end > extent {
			extent = end
		}
	}
	return extent
}

// GenerateParser synthesizes the parse function for a header: it
// bounds-checks the payload against the header's full extent (a header
// either matches whole or not at all), then assembles each big-endian
// field into its header slot. This is the "automatically generates the
// corresponding parser" step of §4.1.
func GenerateParser(h HeaderSpec) (*mcc.Function, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	b := mcc.NewBuilder(h.ParserName())
	b.PktLen(2) // r2 = payload length
	// if payloadLen < extent: the header is absent; skip everything.
	b.MovImm(3, int64(h.Extent()))
	b.Lt(4, 2, 3)
	b.Brnz(4, "absent")
	for _, f := range h.Fields {
		// Assemble big-endian into r5.
		b.MovImm(5, 0)
		b.MovImm(6, 8)
		for i := 0; i < f.Bytes; i++ {
			b.Shl(5, 5, 6)
			b.PktLoad(7, mcc.RegZero, int64(f.Offset+i))
			b.Or(5, 5, 7)
		}
		b.HdrSet(int64(f.Slot), 5)
	}
	b.Label("absent")
	b.Ret(mcc.RegZero)
	return b.Build()
}
