package monitor

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every corner of the text
// exposition format: registration-order rendering, sorted label keys,
// label-value escaping (backslash, quote, newline), HELP escaping, the
// histogram +Inf bucket and le-label merging, and the HistogramFunc
// bridge used by externally-owned histograms.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.MustCounter("lnic_requests_total", "requests served", map[string]string{
		"workload": "web_server", "nic": "m2",
	}).Add(41)
	r.MustCounter("lnic_requests_total", "requests served", map[string]string{
		"workload": "kv_get", "nic": "m2",
	}).Add(7)
	r.MustGauge("lnic_escapes", `tricky "help" with \backslash`+"\nand newline",
		map[string]string{"path": `C:\tmp`, "quote": `say "hi"`, "nl": "a\nb"}).Set(1.5)
	if err := r.GaugeFunc("lnic_live_workers", "live worker count", nil,
		func() float64 { return 3 }); err != nil {
		panic(err)
	}
	h := r.MustHistogram("lnic_latency_seconds", "request latency",
		map[string]string{"workload": "web_server"}, []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0004, 0.004, 0.004, 0.04, 4} {
		h.Observe(v)
	}
	if err := r.HistogramFunc("lnic_remote_latency_seconds", "scraped histogram",
		map[string]string{"nic": "m3"}, func() HistogramSnapshot {
			return HistogramSnapshot{
				Bounds:     []float64{0.001, 0.1},
				Cumulative: []uint64{2, 5, 6},
				Sum:        0.75,
				Count:      6,
			}
		}); err != nil {
		panic(err)
	}
	return r
}

func TestExpositionGolden(t *testing.T) {
	got := goldenRegistry().Render()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if ct := resp.Header.Get("Content-Type"); ct != want {
		t.Errorf("Content-Type = %q, want %q", ct, want)
	}
}

func TestHistogramFuncNil(t *testing.T) {
	r := NewRegistry()
	if err := r.HistogramFunc("bad", "", nil, nil); err == nil {
		t.Error("nil function accepted")
	}
	fn := func() HistogramSnapshot { return HistogramSnapshot{} }
	if err := r.HistogramFunc("h", "", nil, fn); err != nil {
		t.Fatal(err)
	}
	if err := r.HistogramFunc("h", "", nil, fn); err == nil {
		t.Error("duplicate HistogramFunc accepted")
	}
}
