package monitor

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("requests_total", "total requests", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
	out := r.Render()
	for _, want := range []string{"# HELP requests_total total requests", "# TYPE requests_total counter", "requests_total 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.MustGauge("inflight", "", map[string]string{"backend": "lambda-nic"})
	g.Set(3)
	g.Add(2.5)
	g.Add(-1)
	if got := g.Value(); got != 4.5 {
		t.Errorf("Value = %v", got)
	}
	if !strings.Contains(r.Render(), `inflight{backend="lambda-nic"} 4.5`) {
		t.Errorf("render:\n%s", r.Render())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Errorf("concurrent adds = %v, want 8000", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	bounds, cum, sum, count := h.Snapshot()
	if len(bounds) != 3 || count != 5 {
		t.Fatalf("bounds=%v count=%d", bounds, count)
	}
	// cumulative: <=0.001: 1; <=0.01: 3; <=0.1: 4; +Inf: 5
	want := []uint64{1, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if sum < 5.06 || sum > 5.07 {
		t.Errorf("sum = %v", sum)
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("latency_seconds", "request latency",
		map[string]string{"workload": "web"}, []float64{0.001, 0.1})
	h.Observe(0.0004)
	h.Observe(0.05)
	out := r.Render()
	for _, want := range []string{
		`latency_seconds_bucket{workload="web",le="0.001"} 1`,
		`latency_seconds_bucket{workload="web",le="0.1"} 2`,
		`latency_seconds_bucket{workload="web",le="+Inf"} 2`,
		`latency_seconds_count{workload="web"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramCumulativeProperty(t *testing.T) {
	// Property: cumulative counts are nondecreasing and the +Inf bucket
	// equals the sample count.
	f := func(raw []uint16) bool {
		h := NewHistogram(DefaultLatencyBuckets)
		for _, v := range raw {
			h.Observe(float64(v) / 1000)
		}
		_, cum, _, count := h.Snapshot()
		prev := uint64(0)
		for _, c := range cum {
			if c < prev {
				return false
			}
			prev = c
		}
		return cum[len(cum)-1] == count && count == uint64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("x", "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Counter("x", "", nil); err == nil {
		t.Error("duplicate registration accepted")
	}
	// Same name with different labels is allowed.
	if _, err := r.Counter("x", "", map[string]string{"a": "1"}); err != nil {
		t.Errorf("labeled variant rejected: %v", err)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	h.ObserveDuration(1500 * time.Microsecond)
	h.ObserveDuration(250 * time.Millisecond)
	_, cum, sum, count := h.Snapshot()
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	if sum < 0.2514 || sum > 0.2516 {
		t.Errorf("sum = %v, want ~0.2515 seconds", sum)
	}
	// 1.5ms lands in the <=1e-2 bucket (index 4), 250ms in <=1 (index 6).
	if cum[3] != 0 || cum[4] != 1 || cum[6] != 2 {
		t.Errorf("cumulative = %v", cum)
	}
}

func TestRenderDeterministic(t *testing.T) {
	// The exposition must be byte-identical across calls: metrics render
	// in registration order and label keys are sorted.
	r := NewRegistry()
	r.MustCounter("b_total", "second", map[string]string{"z": "9", "a": "1"}).Inc()
	r.MustCounter("a_total", "first", nil).Add(2)
	r.MustHistogram("h_seconds", "", map[string]string{"workload": "web"},
		[]float64{0.01}).Observe(0.001)
	first := r.Render()
	for i := 0; i < 10; i++ {
		if got := r.Render(); got != first {
			t.Fatalf("render #%d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	// Registration order, not alphabetical: b_total renders before a_total.
	if strings.Index(first, "b_total") > strings.Index(first, "a_total") {
		t.Errorf("metrics not in registration order:\n%s", first)
	}
	if !strings.Contains(first, `b_total{a="1",z="9"} 1`) {
		t.Errorf("label keys not sorted:\n%s", first)
	}
}

func TestLabelsDeterministic(t *testing.T) {
	got := renderLabels(map[string]string{"z": "1", "a": "2", "m": "3"})
	if got != `{a="2",m="3",z="1"}` {
		t.Errorf("labels = %s", got)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.MustCounter("hits", "", nil).Add(7)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "hits 7") {
		t.Errorf("body = %q", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
}

func TestPprofMux(t *testing.T) {
	srv := httptest.NewServer(PprofMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
	// Nothing outside /debug/pprof/ is served.
	resp, err = srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("root status = %d, want 404", resp.StatusCode)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	live := 4
	if err := r.GaugeFunc("live_workers", "live worker count",
		map[string]string{"node": "m1"}, func() float64 { return float64(live) }); err != nil {
		t.Fatalf("GaugeFunc: %v", err)
	}
	if !strings.Contains(r.Render(), `live_workers{node="m1"} 4`) {
		t.Errorf("render:\n%s", r.Render())
	}
	// The value is computed at scrape time, not registration time.
	live = 3
	if !strings.Contains(r.Render(), `live_workers{node="m1"} 3`) {
		t.Errorf("render after change:\n%s", r.Render())
	}
	if err := r.GaugeFunc("bad", "", nil, nil); err == nil {
		t.Error("nil function accepted")
	}
	// Duplicate registration is rejected like any other metric.
	if err := r.GaugeFunc("live_workers", "", map[string]string{"node": "m1"},
		func() float64 { return 0 }); err == nil {
		t.Error("duplicate GaugeFunc accepted")
	}
}
