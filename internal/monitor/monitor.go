// Package monitor is a small Prometheus-style metrics engine, standing
// in for the "Prometheus-based monitoring engine to analyze system
// state" in the paper's baseline framework (§6.1.1). It provides
// counters, gauges, and histograms registered in a Registry, rendered
// in the Prometheus text exposition format, and servable over HTTP.
package monitor

import (
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending
	counts  []uint64  // per-bucket (non-cumulative) counts
	sum     float64
	samples uint64
}

// DefaultLatencyBuckets spans 1µs..10s in decades (seconds).
var DefaultLatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// FineLatencyBuckets spans 1µs..10s in a 1-2-5 series (seconds) — fine
// enough that tail quantiles interpolated from a scrape are meaningful.
// The telemetry plane's histograms expose through these bounds.
var FineLatencyBuckets = []float64{
	1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1, 2, 5, 10,
}

// NewHistogram builds a histogram with the given ascending upper
// bounds; a +Inf bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// ObserveDuration records a latency sample in seconds — the common
// case for the request-path histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.sum += v
	h.samples++
}

// Snapshot returns cumulative bucket counts, total sum, and count.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	running := uint64(0)
	for i, c := range h.counts {
		running += c
		cumulative[i] = running
	}
	return bounds, cumulative, h.sum, h.samples
}

// HistogramSnapshot is a point-in-time cumulative view of a histogram,
// produced by external histogram implementations registered through
// HistogramFunc (the telemetry plane's lock-free histograms expose
// themselves this way). Cumulative has len(Bounds)+1 entries; the last
// is the +Inf bucket and equals Count.
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// metric is one registered metric with metadata.
type metric struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...} or ""
	kind   string
	c      *Counter
	cf     func() uint64
	g      *Gauge
	gf     func() float64
	h      *Histogram
	hf     func() HistogramSnapshot
}

// Registry holds registered metrics; safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	seen    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]bool)}
}

// escapeLabelValue applies the exposition format's label-value escaping:
// backslash, double quote, and newline are escaped; everything else is
// emitted raw (the format is UTF-8, not ASCII-armored).
func escapeLabelValue(v string) string {
	return labelEscaper.Replace(v)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeHelp applies the exposition format's HELP-text escaping:
// backslash and newline only (quotes are legal in help text).
func escapeHelp(v string) string {
	return helpEscaper.Replace(v)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// renderLabels formats a label map deterministically.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, k, escapeLabelValue(labels[k])))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (r *Registry) register(m *metric) error {
	key := m.name + m.labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[key] {
		return fmt.Errorf("monitor: metric %s%s already registered", m.name, m.labels)
	}
	r.seen[key] = true
	r.metrics = append(r.metrics, m)
	return nil
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels map[string]string) (*Counter, error) {
	c := &Counter{}
	err := r.register(&metric{name: name, help: help, labels: renderLabels(labels), kind: "counter", c: c})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels map[string]string) (*Gauge, error) {
	g := &Gauge{}
	err := r.register(&metric{name: name, help: help, labels: renderLabels(labels), kind: "gauge", g: g})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — for monotonic counts owned elsewhere (the transport worker
// pool's shed counter) that would otherwise need a push loop. fn must
// be monotonically non-decreasing and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() uint64) error {
	if fn == nil {
		return fmt.Errorf("monitor: CounterFunc %s: nil function", name)
	}
	return r.register(&metric{name: name, help: help, labels: renderLabels(labels), kind: "counter", cf: fn})
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values owned elsewhere (live-worker counts, control-store
// leader changes) that would otherwise need a push loop. fn is called
// from the scrape goroutine and must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) error {
	if fn == nil {
		return fmt.Errorf("monitor: GaugeFunc %s: nil function", name)
	}
	return r.register(&metric{name: name, help: help, labels: renderLabels(labels), kind: "gauge", gf: fn})
}

// HistogramFunc registers a histogram whose cumulative snapshot is
// computed by fn at scrape time — the bridge for externally-owned
// histogram implementations (the telemetry plane's lock-free sharded
// histograms). fn is called from the scrape goroutine and must be safe
// for concurrent use.
func (r *Registry) HistogramFunc(name, help string, labels map[string]string, fn func() HistogramSnapshot) error {
	if fn == nil {
		return fmt.Errorf("monitor: HistogramFunc %s: nil function", name)
	}
	return r.register(&metric{name: name, help: help, labels: renderLabels(labels), kind: "histogram", hf: fn})
}

// Histogram registers and returns a histogram.
func (r *Registry) Histogram(name, help string, labels map[string]string, bounds []float64) (*Histogram, error) {
	h := NewHistogram(bounds)
	err := r.register(&metric{name: name, help: help, labels: renderLabels(labels), kind: "histogram", h: h})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// MustCounter is Counter for static registrations.
func (r *Registry) MustCounter(name, help string, labels map[string]string) *Counter {
	c, err := r.Counter(name, help, labels)
	if err != nil {
		panic(err)
	}
	return c
}

// MustGauge is Gauge for static registrations.
func (r *Registry) MustGauge(name, help string, labels map[string]string) *Gauge {
	g, err := r.Gauge(name, help, labels)
	if err != nil {
		panic(err)
	}
	return g
}

// MustHistogram is Histogram for static registrations.
func (r *Registry) MustHistogram(name, help string, labels map[string]string, bounds []float64) *Histogram {
	h, err := r.Histogram(name, help, labels, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// Render produces the Prometheus text exposition format.
func (r *Registry) Render() string {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	var b strings.Builder
	helped := map[string]bool{}
	for _, m := range metrics {
		if !helped[m.name] {
			helped[m.name] = true
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case "counter":
			v := uint64(0)
			if m.cf != nil {
				v = m.cf()
			} else {
				v = m.c.Value()
			}
			fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels, v)
		case "gauge":
			v := 0.0
			if m.gf != nil {
				v = m.gf()
			} else {
				v = m.g.Value()
			}
			fmt.Fprintf(&b, "%s%s %g\n", m.name, m.labels, v)
		case "histogram":
			var bounds []float64
			var cum []uint64
			var sum float64
			var count uint64
			if m.hf != nil {
				snap := m.hf()
				bounds, cum, sum, count = snap.Bounds, snap.Cumulative, snap.Sum, snap.Count
			} else {
				bounds, cum, sum, count = m.h.Snapshot()
			}
			base := strings.TrimSuffix(m.labels, "}")
			for i, ub := range bounds {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, bucketLabels(base, m.labels, fmt.Sprintf("%g", ub)), cum[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, bucketLabels(base, m.labels, "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(&b, "%s_sum%s %g\n", m.name, m.labels, sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.labels, count)
		}
	}
	return b.String()
}

// bucketLabels merges the le label into an existing label set.
func bucketLabels(base, full, le string) string {
	if full == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", base, le)
}

// Handler serves the registry over HTTP (GET /metrics style).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := w.Write([]byte(r.Render())); err != nil {
			return
		}
	})
}

// PprofMux returns a mux serving the Go runtime's profiling endpoints
// under /debug/pprof/ without registering anything on
// http.DefaultServeMux. The daemons hang it off an opt-in -pprof
// address so production sockets never expose profiling by accident.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
