package monitor

import "testing"

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 1e6)
	}
}

func BenchmarkRender(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 10; i++ {
		r.MustCounter("c", "", map[string]string{"i": string(rune('a' + i))}).Add(uint64(i))
	}
	h := r.MustHistogram("lat", "", nil, DefaultLatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 1e4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.Render(); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}
