package experiments

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"lambdanic/internal/benchio"
	"lambdanic/internal/transport"
)

// RPCBenchConfig sizes the RPC data-plane benchmark (lnic-bench
// -experiment rpcbench). Unlike the paper-figure experiments, which run
// on the simulated clock, rpcbench measures the real transport
// implementation in wall-clock time, so the numbers track the Go data
// plane's own overheads across PRs.
type RPCBenchConfig struct {
	// PayloadBytes is the request/response payload size.
	PayloadBytes int
	// Duration is the measurement window per configuration.
	Duration time.Duration
	// Concurrencies are the closed-loop caller counts.
	Concurrencies []int
	// OpenRPS is the open-loop offered rate; 0 disables the open-loop
	// configurations.
	OpenRPS float64
	// OpenMaxInflight caps outstanding open-loop requests; arrivals
	// beyond it are shed.
	OpenMaxInflight int
	// UDP also benchmarks a real loopback UDP socket pair (memnet is
	// always benchmarked).
	UDP bool
}

// DefaultRPCBench returns the tracked benchmark configuration.
func DefaultRPCBench() RPCBenchConfig {
	return RPCBenchConfig{
		PayloadBytes:    64,
		Duration:        2 * time.Second,
		Concurrencies:   []int{1, 4, 16},
		OpenRPS:         20000,
		OpenMaxInflight: 256,
		UDP:             true,
	}
}

// QuickRPCBench returns a smoke-run configuration for -quick/-short.
func QuickRPCBench() RPCBenchConfig {
	return RPCBenchConfig{
		PayloadBytes:    64,
		Duration:        150 * time.Millisecond,
		Concurrencies:   []int{1, 4},
		OpenRPS:         5000,
		OpenMaxInflight: 64,
		UDP:             true,
	}
}

// rpcPair is one client/server endpoint pair on some packet transport.
type rpcPair struct {
	client *transport.Endpoint
	server *transport.Endpoint
	srv    net.Addr
}

func (p *rpcPair) close() {
	p.client.Close()
	p.server.Close()
}

// echoHandler returns the request payload; the copy is required because
// the payload may alias a transport buffer recycled after return, and a
// fresh slice keeps the handler honest about response ownership.
func echoHandler(req *transport.Message) ([]byte, error) {
	return append([]byte(nil), req.Payload...), nil
}

func newMemPair(seed int64) (*rpcPair, error) {
	net_ := transport.NewMemNetwork(seed)
	srvConn, err := net_.Listen("rpcbench-srv")
	if err != nil {
		return nil, err
	}
	cliConn, err := net_.Listen("rpcbench-cli")
	if err != nil {
		srvConn.Close()
		return nil, err
	}
	p := &rpcPair{
		server: transport.NewEndpoint(srvConn, echoHandler),
		client: transport.NewEndpoint(cliConn, nil),
	}
	p.srv = p.server.Addr()
	return p, nil
}

func newUDPPair() (*rpcPair, error) {
	srvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cliConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		srvConn.Close()
		return nil, err
	}
	p := &rpcPair{
		server: transport.NewEndpoint(srvConn, echoHandler),
		client: transport.NewEndpoint(cliConn, nil),
	}
	p.srv = p.server.Addr()
	return p, nil
}

// RPCBench benchmarks the RPC data plane over memnet and (optionally)
// loopback UDP, closed- and open-loop, and returns the report written
// to BENCH_rpc.json.
func RPCBench(cfg RPCBenchConfig, seed int64) (benchio.Report, error) {
	if cfg.PayloadBytes < 1 {
		cfg.PayloadBytes = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if len(cfg.Concurrencies) == 0 {
		cfg.Concurrencies = []int{1, 4}
	}

	type target struct {
		name string
		make func() (*rpcPair, error)
	}
	targets := []target{
		{"memnet", func() (*rpcPair, error) { return newMemPair(seed) }},
	}
	if cfg.UDP {
		targets = append(targets, target{"udp", newUDPPair})
	}

	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}

	var results []benchio.Result
	for _, tg := range targets {
		pair, err := tg.make()
		if err != nil {
			return benchio.Report{}, fmt.Errorf("rpcbench: %s setup: %w", tg.name, err)
		}
		call := func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_, err := pair.client.Call(ctx, pair.srv, 1, payload)
			cancel()
			return err
		}
		name := fmt.Sprintf("roundtrip/%dB", cfg.PayloadBytes)
		for _, c := range cfg.Concurrencies {
			results = append(results,
				benchio.ClosedLoop(name, tg.name, c, cfg.Duration, call))
		}
		if cfg.OpenRPS > 0 {
			results = append(results,
				benchio.OpenLoop(name, tg.name, cfg.OpenRPS, cfg.Duration, cfg.OpenMaxInflight, call))
		}
		pair.close()
	}
	return benchio.NewReport(results), nil
}

// RenderRPCBench formats the report as a text table in the style of the
// paper-figure renderers.
func RenderRPCBench(rep benchio.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "RPC data-plane benchmark (%s, GOMAXPROCS=%d)\n",
		rep.GoVersion, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%-18s %-7s %-7s %6s %9s %11s %9s %9s %9s %8s\n",
		"name", "net", "mode", "conc", "offered", "req/s", "p50us", "p99us", "allocs", "errors")
	for _, r := range rep.Results {
		conc := "-"
		if r.Concurrency > 0 {
			conc = fmt.Sprintf("%d", r.Concurrency)
		}
		offered := "-"
		if r.OfferedRPS > 0 {
			offered = fmt.Sprintf("%.0f", r.OfferedRPS)
		}
		fmt.Fprintf(&b, "%-18s %-7s %-7s %6s %9s %11.0f %9.1f %9.1f %9.2f %8d\n",
			r.Name, r.Transport, r.Mode, conc, offered,
			r.ReqPerSec,
			float64(r.P50Ns)/1e3, float64(r.P99Ns)/1e3,
			r.AllocsPerOp, r.Errors)
		if r.Shed > 0 {
			fmt.Fprintf(&b, "%-18s   shed %d arrivals over in-flight cap\n", "", r.Shed)
		}
	}
	return b.String()
}
