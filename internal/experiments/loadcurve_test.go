package experiments

import (
	"strings"
	"testing"
)

func TestLoadLatencyCurveShape(t *testing.T) {
	points, err := LoadLatencyCurve(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byBackend := map[BackendID][]LoadPoint{}
	for _, p := range points {
		byBackend[p.Backend] = append(byBackend[p.Backend], p)
	}
	nic, bare := byBackend[BackendLambdaNIC], byBackend[BackendBareMetal]
	if len(nic) != len(bare) || len(nic) < 4 {
		t.Fatalf("points per backend: nic=%d bare=%d", len(nic), len(bare))
	}
	// λ-NIC's p99 stays flat across the sweep (< 3x its lightest-load
	// p99); run-to-completion threads never queue at these rates.
	base := nic[0].P99
	for _, p := range nic {
		if p.P99 > 3*base {
			t.Errorf("λ-NIC p99 grew at %.0f req/s: %v vs %v", p.OfferedRPS, p.P99, base)
		}
	}
	// Bare metal hits its knee: its highest-load p99 must blow past its
	// lightest-load p99 by an order of magnitude (dispatch saturation).
	if last, first := bare[len(bare)-1].P99, bare[0].P99; last < 10*first {
		t.Errorf("bare-metal knee missing: p99 %v -> %v", first, last)
	}
	// And λ-NIC beats bare metal at every point.
	for i := range nic {
		if nic[i].P99 >= bare[i].P99 {
			t.Errorf("at %.0f req/s λ-NIC p99 %v not below bare %v",
				nic[i].OfferedRPS, nic[i].P99, bare[i].P99)
		}
	}
	// SLO grading: λ-NIC holds the 1 ms p99 objective at every offered
	// load; bare metal must violate it (burn > 1) once past its knee.
	for _, p := range nic {
		if !p.SLOMet {
			t.Errorf("λ-NIC violated SLO at %.0f req/s: good=%.4f burn=%.2f",
				p.OfferedRPS, p.GoodFrac, p.BurnRate)
		}
	}
	if last := bare[len(bare)-1]; last.SLOMet || last.BurnRate <= 1 {
		t.Errorf("bare metal should burn budget past its knee: good=%.4f burn=%.2f",
			last.GoodFrac, last.BurnRate)
	}
	out := RenderLoadCurve(points)
	if !strings.Contains(out, "offered load") {
		t.Error("render broken")
	}
	for _, want := range []string{"SLO", "burn=", "VIOLATED"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
