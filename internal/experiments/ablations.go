package experiments

// Ablations of the design choices DESIGN.md calls out, plus the §7
// extensions the paper discusses:
//
//   - run-to-completion vs. CPU-style time slicing on NPU threads (D1);
//   - WFQ vs. the hardware's uniform dispatch at the NIC scheduler (D1);
//   - memory stratification on vs. off (D2, dynamic cycles);
//   - weakly-consistent delivery vs. a TCP-like per-request handshake (D3);
//   - gateway on the host vs. on a SmartNIC (§7 "accelerating other
//     forms of workloads");
//   - firmware swap with downtime vs. hitless updates (§7 "hot swapping
//     workloads").

import (
	"fmt"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/cluster"
	"lambdanic/internal/mcc"
	"lambdanic/internal/metrics"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/trace"
	"lambdanic/internal/workloads"
)

// AblationResult compares two variants of one design choice.
type AblationResult struct {
	Name string
	// Variants in presentation order; Better names the paper's choice.
	Variants []AblationVariant
	Better   string
}

// AblationVariant is one side of an ablation.
type AblationVariant struct {
	Name string
	// Metric semantics depend on the ablation (latency summary,
	// throughput, cycles, or error count); Unit documents it.
	Value float64
	Unit  string
	// Latency, when the ablation measures a distribution.
	Latency metrics.Summary
}

// smallNIC returns a deliberately tiny NPU grid so scheduling effects
// are visible (the full 448 threads hide queueing entirely — which is
// itself the paper's point).
func smallNIC(tb cluster.Testbed) cluster.NICConfig {
	nic := tb.NIC
	nic.Islands = 1
	nic.CoresPerIsland = 2
	nic.ThreadsPerCore = 2
	return nic
}

// ablationSet is the mixed workload for scheduler ablations: short web
// requests sharing the NIC with long image transformations.
func ablationSet() []*workloads.Workload {
	return []*workloads.Workload{
		workloads.WebServer(),
		workloads.KVGetClient(),
		workloads.KVSetClient(),
		workloads.ImageTransformer(64, 64),
	}
}

// AblationRunToCompletion compares D1's run-to-completion execution
// against CPU-style time slicing on a small NPU grid under a mixed
// short/long workload. Preemption buys nothing (the work is the same)
// and pays a context-switch tax on every slice — the overhead the
// paper's design eliminates.
func AblationRunToCompletion(cfg Config) (*AblationResult, error) {
	run := func(preemptive bool) (metrics.Summary, sim.Time, error) {
		s := cfg.newSim()
		nicCfg := nicsim.Config{NIC: smallNIC(cfg.Testbed), Preemptive: preemptive}
		nic, err := nicsim.New(s, nicCfg)
		if err != nil {
			return metrics.Summary{}, 0, err
		}
		exe, _, err := workloads.CompileOptimized(ablationSet(), workloads.NaiveProgramTarget)
		if err != nil {
			return metrics.Summary{}, 0, err
		}
		if err := nic.Load(exe); err != nil {
			return metrics.Summary{}, 0, err
		}
		img := workloads.ImageTransformer(64, 64)
		web := workloads.WebServer()
		var lat metrics.Sample
		// Interleave long and short requests, all arriving together.
		for i := 0; i < 20; i++ {
			nic.Inject(&nicsim.Request{
				LambdaID: img.ID,
				Payload:  img.MakeRequest(i),
				Packets:  workloads.Packets(len(img.MakeRequest(i))),
			}, nil)
			start := s.Now()
			nic.Inject(&nicsim.Request{LambdaID: web.ID, Payload: web.MakeRequest(i), Packets: 1},
				func(nicsim.Response, error) { lat.AddDuration(s.Now() - start) })
		}
		if err := s.RunUntilIdle(); err != nil {
			return metrics.Summary{}, 0, err
		}
		return lat.Summarize(), s.Now(), nil
	}
	rtc, rtcMakespan, err := run(false)
	if err != nil {
		return nil, err
	}
	pre, preMakespan, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "run-to-completion vs time slicing (D1)",
		Better: "run-to-completion",
		Variants: []AblationVariant{
			{Name: "run-to-completion", Value: rtcMakespan.Seconds(), Unit: "makespan-s", Latency: rtc},
			{Name: "preemptive", Value: preMakespan.Seconds(), Unit: "makespan-s", Latency: pre},
		},
	}, nil
}

// AblationWFQ compares the hardware's uniform FIFO dispatch against
// λ-NIC's weighted fair queuing when a flood of long requests queues
// ahead of short interactive ones: WFQ keeps the short flow's latency
// bounded (§4.2.1 D1).
func AblationWFQ(cfg Config) (*AblationResult, error) {
	run := func(dispatch nicsim.Dispatch) (metrics.Summary, error) {
		s := cfg.newSim()
		nic, err := nicsim.New(s, nicsim.Config{NIC: smallNIC(cfg.Testbed), Dispatch: dispatch})
		if err != nil {
			return metrics.Summary{}, err
		}
		exe, _, err := workloads.CompileOptimized(ablationSet(), workloads.NaiveProgramTarget)
		if err != nil {
			return metrics.Summary{}, err
		}
		if err := nic.Load(exe); err != nil {
			return metrics.Summary{}, err
		}
		img := workloads.ImageTransformer(64, 64)
		web := workloads.WebServer()
		// The heavy flow floods first and saturates all threads...
		for i := 0; i < 40; i++ {
			payload := img.MakeRequest(i)
			nic.Inject(&nicsim.Request{
				LambdaID: img.ID, Payload: payload, Packets: workloads.Packets(len(payload)),
			}, nil)
		}
		// ...then the interactive flow arrives behind the backlog.
		var lat metrics.Sample
		for i := 0; i < 20; i++ {
			start := s.Now()
			nic.Inject(&nicsim.Request{LambdaID: web.ID, Payload: web.MakeRequest(i), Packets: 1},
				func(nicsim.Response, error) { lat.AddDuration(s.Now() - start) })
		}
		if err := s.RunUntilIdle(); err != nil {
			return metrics.Summary{}, err
		}
		return lat.Summarize(), nil
	}
	fifo, err := run(nicsim.DispatchUniform)
	if err != nil {
		return nil, err
	}
	wfq, err := run(nicsim.DispatchWFQ)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "WFQ vs uniform dispatch (D1)",
		Better: "wfq",
		Variants: []AblationVariant{
			{Name: "uniform-fifo", Value: fifo.P99, Unit: "web-p99-s", Latency: fifo},
			{Name: "wfq", Value: wfq.P99, Unit: "web-p99-s", Latency: wfq},
		},
	}, nil
}

// AblationMemoryStratification compares the dynamic cycle cost of the
// benchmark lambdas with and without the stratification pass (all
// objects left in EMEM): placement is where most of D2's benefit lives.
func AblationMemoryStratification(cfg Config) (*AblationResult, error) {
	cycles := func(stratify bool) (float64, error) {
		naive, err := workloads.BuildNaiveProgram(cfg.set(), workloads.NaiveProgramTarget)
		if err != nil {
			return 0, err
		}
		opt, _, err := mcc.Optimize(naive, mcc.OptimizeConfig{
			Coalesce: true, ReduceMatch: true, Stratify: stratify,
		})
		if err != nil {
			return 0, err
		}
		exe, err := mcc.Link(opt, mcc.LinkOptions{})
		if err != nil {
			return 0, err
		}
		total := uint64(0)
		for _, w := range []*workloads.Workload{workloads.WebServer(), workloads.KVGetClient()} {
			req := &nicsim.Request{LambdaID: w.ID, Payload: w.MakeRequest(1), Packets: 1}
			if _, err := exe.Execute(req); err != nil { // warm
				return 0, err
			}
			resp, err := exe.Execute(req)
			if err != nil {
				return 0, err
			}
			total += resp.Stats.Cycles(cfg.Testbed.NIC)
		}
		return float64(total), nil
	}
	off, err := cycles(false)
	if err != nil {
		return nil, err
	}
	on, err := cycles(true)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "memory stratification on vs off (D2)",
		Better: "stratified",
		Variants: []AblationVariant{
			{Name: "all-EMEM", Value: off, Unit: "cycles/web+kv"},
			{Name: "stratified", Value: on, Unit: "cycles/web+kv"},
		},
	}, nil
}

// AblationTransport compares D3's weakly-consistent single-shot RPC
// against a TCP-like transport that pays a connection handshake round
// trip plus NIC-side connection-state processing per request (the
// "strict, reliable, and in-order streaming delivery" serverless RPCs
// do not need, §4.2.1 D3).
func AblationTransport(cfg Config) (*AblationResult, error) {
	const tcpStateCycles = 1500 // connection setup/teardown on the NIC
	measure := func(tcpLike bool) (metrics.Summary, error) {
		s := cfg.newSim()
		b, err := backend.NewLambdaNIC(s, cfg.Testbed, nicsim.DispatchUniform)
		if err != nil {
			return metrics.Summary{}, err
		}
		if err := b.Deploy(cfg.set()); err != nil {
			return metrics.Summary{}, err
		}
		web := workloads.WebServer()
		handshake := 2 * cfg.Testbed.Link.OneWay(64) // SYN + SYN-ACK
		stateCost := sim.CyclesToDuration(tcpStateCycles, cfg.Testbed.NIC.ClockHz)
		var lat metrics.Sample
		issue := func(i int, done func()) {
			start := s.Now()
			fire := func() {
				b.Invoke(web.ID, web.MakeRequest(i), func(backend.Result) {
					lat.AddDuration(s.Now() - start)
					done()
				})
			}
			if tcpLike {
				s.Schedule(handshake+stateCost, fire)
			} else {
				fire()
			}
		}
		var next func(i int)
		next = func(i int) {
			if i >= 200 {
				return
			}
			issue(i, func() { next(i + 1) })
		}
		next(0)
		if err := s.RunUntilIdle(); err != nil {
			return metrics.Summary{}, err
		}
		return lat.Summarize(), nil
	}
	weak, err := measure(false)
	if err != nil {
		return nil, err
	}
	tcp, err := measure(true)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "weakly-consistent RPC vs TCP-like transport (D3)",
		Better: "weakly-consistent",
		Variants: []AblationVariant{
			{Name: "weakly-consistent", Value: weak.Mean, Unit: "web-mean-s", Latency: weak},
			{Name: "tcp-like", Value: tcp.Mean, Unit: "web-mean-s", Latency: tcp},
		},
	}, nil
}

// AblationGatewayOnNIC measures the §7 extension: moving the gateway
// itself onto a SmartNIC removes its host-software occupancy as the
// cluster throughput ceiling.
func AblationGatewayOnNIC(cfg Config) (*AblationResult, error) {
	// NIC-grade gateway occupancy: parse+match plus forwarding, ~300
	// cycles per request.
	nicOccupancy := sim.CyclesToDuration(300, cfg.Testbed.NIC.ClockHz)
	measure := func(latency, occupancy time.Duration) (float64, error) {
		s, b, err := cfg.newBackend(BackendLambdaNIC, cfg.set())
		if err != nil {
			return 0, err
		}
		gw := trace.NewGateway(s, b, latency, occupancy)
		web := workloads.WebServer()
		res, err := trace.ClosedLoop{
			Concurrency: cfg.Concurrency,
			Requests:    cfg.Fig7Requests,
			Warmup:      cfg.Warmup,
			Gen:         trace.Fixed(web.ID, web.MakeRequest),
		}.Run(s, gw)
		if err != nil {
			return 0, err
		}
		return res.Throughput.PerSecond(), nil
	}
	host, err := measure(cfg.Testbed.Costs.GatewayLatency, cfg.Testbed.Costs.GatewayOccupancy)
	if err != nil {
		return nil, err
	}
	onNIC, err := measure(cfg.Testbed.Link.OneWay(256), nicOccupancy)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "gateway on host vs on SmartNIC (§7)",
		Better: "gateway-on-nic",
		Variants: []AblationVariant{
			{Name: "gateway-on-host", Value: host, Unit: "req/s"},
			{Name: "gateway-on-nic", Value: onNIC, Unit: "req/s"},
		},
	}, nil
}

// AblationHitlessSwap measures the §7 limitation: swapping firmware on
// current NICs drops the requests that arrive during the reload, while
// a hitless update (next-generation NICs) serves through it.
func AblationHitlessSwap(cfg Config) (*AblationResult, error) {
	run := func(downtime time.Duration) (float64, error) {
		s := cfg.newSim()
		nic, err := nicsim.New(s, nicsim.Config{NIC: cfg.Testbed.NIC, FirmwareSwapDowntime: downtime})
		if err != nil {
			return 0, err
		}
		exe, _, err := workloads.CompileOptimized(ablationSet(), workloads.NaiveProgramTarget)
		if err != nil {
			return 0, err
		}
		if err := nic.Load(exe); err != nil {
			return 0, err
		}
		web := workloads.WebServer()
		dropped := 0
		// A steady 1 kHz request stream for 2 simulated seconds...
		for i := 0; i < 2000; i++ {
			i := i
			s.ScheduleAt(sim.Time(i)*time.Millisecond, func() {
				nic.Inject(&nicsim.Request{LambdaID: web.ID, Payload: web.MakeRequest(i), Packets: 1},
					func(_ nicsim.Response, err error) {
						if err != nil {
							dropped++
						}
					})
			})
		}
		// ...with a firmware swap (a new lambda rollout) at t = 0.5 s.
		s.ScheduleAt(500*time.Millisecond, func() {
			exe2, _, err := workloads.CompileOptimized(ablationSet(), workloads.NaiveProgramTarget)
			if err != nil {
				return
			}
			if err := nic.Load(exe2); err != nil {
				return
			}
		})
		if err := s.RunUntilIdle(); err != nil {
			return 0, err
		}
		return float64(dropped), nil
	}
	withDowntime, err := run(800 * time.Millisecond)
	if err != nil {
		return nil, err
	}
	hitless, err := run(0)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "firmware swap downtime vs hitless update (§7)",
		Better: "hitless",
		Variants: []AblationVariant{
			{Name: "swap-downtime", Value: withDowntime, Unit: "dropped-requests"},
			{Name: "hitless", Value: hitless, Unit: "dropped-requests"},
		},
	}, nil
}

// Ablations runs every ablation.
func Ablations(cfg Config) ([]*AblationResult, error) {
	runs := []func(Config) (*AblationResult, error){
		AblationRunToCompletion,
		AblationWFQ,
		AblationMemoryStratification,
		AblationTransport,
		AblationGatewayOnNIC,
		AblationHitlessSwap,
	}
	var out []*AblationResult
	for _, run := range runs {
		r, err := run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderAblations prints ablation results.
func RenderAblations(results []*AblationResult) string {
	var b []byte
	for _, r := range results {
		b = append(b, fmt.Sprintf("Ablation: %s (paper's choice: %s)\n", r.Name, r.Better)...)
		for _, v := range r.Variants {
			b = append(b, fmt.Sprintf("  %-20s %14.4g %s\n", v.Name, v.Value, v.Unit)...)
		}
	}
	return string(b)
}
