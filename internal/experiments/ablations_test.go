package experiments

import (
	"strings"
	"testing"
)

func TestAblationRunToCompletion(t *testing.T) {
	r, err := AblationRunToCompletion(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rtc, pre := r.Variants[0], r.Variants[1]
	if rtc.Name != "run-to-completion" || pre.Name != "preemptive" {
		t.Fatalf("variants = %+v", r.Variants)
	}
	// Preemption is pure overhead for run-once lambdas: the makespan
	// must grow.
	if !(pre.Value > rtc.Value) {
		t.Errorf("preemptive makespan %v not above RTC %v", pre.Value, rtc.Value)
	}
	// The context-switch tax should be substantial (> 10%).
	if pre.Value < rtc.Value*1.1 {
		t.Errorf("preemption tax only %.1f%%, model too gentle",
			100*(pre.Value/rtc.Value-1))
	}
}

func TestAblationWFQ(t *testing.T) {
	r, err := AblationWFQ(Quick())
	if err != nil {
		t.Fatal(err)
	}
	fifo, wfq := r.Variants[0], r.Variants[1]
	// WFQ must protect the interactive flow's tail behind the heavy
	// flow's backlog, by a large factor.
	if !(wfq.Value < fifo.Value/2) {
		t.Errorf("WFQ p99 %v not ≪ FIFO p99 %v", wfq.Value, fifo.Value)
	}
}

func TestAblationMemoryStratification(t *testing.T) {
	r, err := AblationMemoryStratification(Quick())
	if err != nil {
		t.Fatal(err)
	}
	off, on := r.Variants[0], r.Variants[1]
	if !(on.Value < off.Value) {
		t.Errorf("stratified cycles %v not below all-EMEM %v", on.Value, off.Value)
	}
	// Near placement should save at least 2x in dynamic cycles for the
	// memory-heavy interactive lambdas.
	if on.Value*2 > off.Value {
		t.Errorf("stratification saving only %.1fx", off.Value/on.Value)
	}
}

func TestAblationTransport(t *testing.T) {
	r, err := AblationTransport(Quick())
	if err != nil {
		t.Fatal(err)
	}
	weak, tcp := r.Variants[0], r.Variants[1]
	if !(weak.Value < tcp.Value) {
		t.Errorf("weakly-consistent %v not below tcp-like %v", weak.Value, tcp.Value)
	}
}

func TestAblationGatewayOnNIC(t *testing.T) {
	r, err := AblationGatewayOnNIC(Quick())
	if err != nil {
		t.Fatal(err)
	}
	host, nic := r.Variants[0], r.Variants[1]
	// Moving the gateway onto a SmartNIC lifts the throughput ceiling
	// by more than an order of magnitude (§7).
	if !(nic.Value > 10*host.Value) {
		t.Errorf("NIC gateway %v not ≫ host gateway %v", nic.Value, host.Value)
	}
}

func TestAblationHitlessSwap(t *testing.T) {
	r, err := AblationHitlessSwap(Quick())
	if err != nil {
		t.Fatal(err)
	}
	down, hitless := r.Variants[0], r.Variants[1]
	if hitless.Value != 0 {
		t.Errorf("hitless swap dropped %v requests", hitless.Value)
	}
	if down.Value <= 0 {
		t.Error("downtime swap dropped nothing; downtime not modeled")
	}
}

func TestAblationsAllAndRender(t *testing.T) {
	res, err := Ablations(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("ablations = %d, want 6", len(res))
	}
	out := RenderAblations(res)
	for _, want := range []string{"run-to-completion", "WFQ", "stratification", "TCP-like", "SmartNIC", "hitless"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
