package experiments

import (
	"fmt"
	"strings"

	"lambdanic/internal/backend"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/trace"
	"lambdanic/internal/workloads"
)

// ScaleOutPoint is aggregate throughput at one worker count.
type ScaleOutPoint struct {
	Workers   int
	PerSecond float64
	// Efficiency is throughput relative to (workers x single-worker
	// throughput).
	Efficiency float64
}

// multiInvoker spreads requests round-robin across worker backends
// sharing one simulation — the gateway's load balancing over the
// testbed's worker nodes (Fig. 2).
type multiInvoker struct {
	backends []*backend.LambdaNIC
	next     int
}

func (m *multiInvoker) Invoke(id uint32, payload []byte, done func(backend.Result)) {
	b := m.backends[m.next%len(m.backends)]
	m.next++
	b.Invoke(id, payload, done)
}

// ScaleOut measures aggregate image-transformer throughput as worker
// NICs are added (the paper's testbed has four workers, §6.1.2). The
// workload is link-bound per worker, so throughput scales near-linearly
// with the worker count — the fleet-level consequence of running
// lambdas on NICs.
func ScaleOut(cfg Config) ([]ScaleOutPoint, error) {
	img := workloads.ImageTransformer(128, 128) // 64 KiB requests: link-bound
	set := []*workloads.Workload{
		workloads.WebServer(), workloads.KVGetClient(), workloads.KVSetClient(),
		workloads.ImageTransformer(128, 128),
	}
	requests := cfg.Fig7Requests / 4
	if requests < 100 {
		requests = 100
	}
	run := func(workers int) (float64, error) {
		s := cfg.newSim()
		mi := &multiInvoker{}
		for i := 0; i < workers; i++ {
			b, err := backend.NewLambdaNIC(s, cfg.Testbed, nicsim.DispatchUniform)
			if err != nil {
				return 0, err
			}
			if err := b.Deploy(set); err != nil {
				return 0, err
			}
			mi.backends = append(mi.backends, b)
		}
		res, err := trace.ClosedLoop{
			Concurrency: cfg.Concurrency * workers,
			// Scale the request count with the fleet so ramp-up and
			// drain edges stay a small fraction of the run.
			Requests: requests * workers,
			Warmup:   cfg.Warmup,
			Gen:      trace.Fixed(img.ID, img.MakeRequest),
		}.Run(s, mi)
		if err != nil {
			return 0, err
		}
		return res.Throughput.PerSecond(), nil
	}

	var out []ScaleOutPoint
	var single float64
	for _, workers := range []int{1, 2, 4} {
		tput, err := run(workers)
		if err != nil {
			return nil, fmt.Errorf("scaleout %d workers: %w", workers, err)
		}
		if workers == 1 {
			single = tput
		}
		eff := 1.0
		if single > 0 {
			eff = tput / (single * float64(workers))
		}
		out = append(out, ScaleOutPoint{Workers: workers, PerSecond: tput, Efficiency: eff})
	}
	return out, nil
}

// ParallelScaleOut is ScaleOut's multi-core path: each worker NIC
// becomes its own simulation domain, with its own kernel, clock, and
// closed-loop driver, and sim.Parallel runs the domains concurrently.
// The scale-out workload has no cross-worker traffic — the shared-clock
// version's round-robin driver is the only coupling — so the domains
// are declared independent (zero lookahead) and each worker carries the
// same per-worker load as in the merged run (Concurrency callers,
// requests/worker). Every domain is seeded identically, so per-worker
// results are bit-identical to a one-worker run and across repetitions,
// regardless of core count.
func ParallelScaleOut(cfg Config) ([]ScaleOutPoint, error) {
	img := workloads.ImageTransformer(128, 128)
	set := []*workloads.Workload{
		workloads.WebServer(), workloads.KVGetClient(), workloads.KVSetClient(),
		workloads.ImageTransformer(128, 128),
	}
	requests := cfg.Fig7Requests / 4
	if requests < 100 {
		requests = 100
	}
	run := func(workers int) (float64, error) {
		p := sim.NewParallel(0)
		results := make([]*trace.Result, workers)
		for i := 0; i < workers; i++ {
			d := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
			b, err := backend.NewLambdaNIC(d.Sim, cfg.Testbed, nicsim.DispatchUniform)
			if err != nil {
				return 0, err
			}
			if err := b.Deploy(set); err != nil {
				return 0, err
			}
			res, err := trace.ClosedLoop{
				Concurrency: cfg.Concurrency,
				Requests:    requests,
				Warmup:      cfg.Warmup,
				Gen:         trace.Fixed(img.ID, img.MakeRequest),
			}.Start(d.Sim, b)
			if err != nil {
				return 0, err
			}
			results[i] = res
		}
		if err := p.RunUntilIdle(); err != nil {
			return 0, err
		}
		total := 0.0
		for _, r := range results {
			total += r.Throughput.PerSecond()
		}
		return total, nil
	}

	var out []ScaleOutPoint
	var single float64
	for _, workers := range []int{1, 2, 4} {
		tput, err := run(workers)
		if err != nil {
			return nil, fmt.Errorf("parallel scaleout %d workers: %w", workers, err)
		}
		if workers == 1 {
			single = tput
		}
		eff := 1.0
		if single > 0 {
			eff = tput / (single * float64(workers))
		}
		out = append(out, ScaleOutPoint{Workers: workers, PerSecond: tput, Efficiency: eff})
	}
	return out, nil
}

// RenderScaleOut prints the scale-out series.
func RenderScaleOut(points []ScaleOutPoint) string {
	var b strings.Builder
	b.WriteString("Scale-out: image-transformer throughput vs worker NICs\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %d worker(s): %8.0f req/s  (%.0f%% scaling efficiency)\n",
			p.Workers, p.PerSecond, 100*p.Efficiency)
	}
	return b.String()
}
