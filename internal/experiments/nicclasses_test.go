package experiments

import (
	"strings"
	"testing"
)

func TestSmartNICClassesMatchTable1(t *testing.T) {
	results, err := SmartNICClasses(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("classes = %d", len(results))
	}
	by := map[string]NICClassResult{}
	for _, r := range results {
		by[r.Class] = r
	}
	asic, fpga, soc := by["ASIC-based"], by["FPGA-based"], by["SoC-based"]
	// Table 1: ASIC and FPGA are low latency; the SoC's OS path is not.
	if !(soc.WebLatency.P50 > 3*asic.WebLatency.P50) {
		t.Errorf("SoC latency %v not ≫ ASIC %v", soc.WebLatency.P50, asic.WebLatency.P50)
	}
	if fpga.WebLatency.P50 > soc.WebLatency.P50 {
		t.Errorf("FPGA latency %v above SoC %v; should be low-latency class",
			fpga.WebLatency.P50, soc.WebLatency.P50)
	}
	// Table 1: 200+ cores beat 10 cores beat the OS-bound SoC on
	// saturated throughput.
	if !(asic.WebThroughput > fpga.WebThroughput && fpga.WebThroughput > soc.WebThroughput) {
		t.Errorf("throughput ordering wrong: asic=%.0f fpga=%.0f soc=%.0f",
			asic.WebThroughput, fpga.WebThroughput, soc.WebThroughput)
	}
	if out := RenderNICClasses(results); !strings.Contains(out, "ASIC-based") {
		t.Error("render broken")
	}
}
