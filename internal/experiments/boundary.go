package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"lambdanic/internal/autoscale"
	"lambdanic/internal/backend"
	"lambdanic/internal/benchio"
	"lambdanic/internal/cluster"
	"lambdanic/internal/metrics"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/placement"
	"lambdanic/internal/sim"
	"lambdanic/internal/workloads"
)

// The boundary experiment measures what runtime NIC/host boundary
// scheduling buys over a boundary fixed at deploy time. A small rack of
// down-binned λ-NICs and one bare-metal host serve a mixed workload set
// through a diurnal load curve with a flash crowd at the morning ramp:
//
//	web    the paper's interactive web server (~µs of NPU time) — the
//	       lambda the NIC exists for;
//	mid    a mid-weight EMEM sweeper (~100 µs) — NIC-viable, host-
//	       infeasible at peak rate (the host's serialized dispatch path
//	       caps out in the low thousands of requests per second);
//	heavy  a long EMEM batch sweep (~ms of NPU time) with a low GIL
//	       fraction — the lambda the host is *better* at: its NPU
//	       residency burns whole cores per request, while the host's
//	       parallel compute pool absorbs it for one dispatch slot.
//
// Three policies consume the identical pre-drawn schedule:
//
//	static-nic   everything resident on the NIC rack, full rack always
//	             powered (the paper's deploy-time answer);
//	static-host  everything on the host (the serverful baseline);
//	dynamic      the placement engine: an autoscaler sizes the active
//	             NIC pool from the arrival rate, and when even the full
//	             rack saturates, the engine migrates the worst-fit
//	             lambda across the boundary (warm, cutover, drain),
//	             guided by shadow-probe latency evidence on the
//	             non-resident side.
//
// The verdict is a Pareto claim: the dynamic policy's p99 is no worse
// (within tolerance) than the better static policy in every phase of
// the curve, while its provisioned NIC-core·time is strictly lower than
// static-nic's. Fingerprints (event count, final clock) are
// bit-identical between Boundary and BoundaryParallel and across sim
// kernels.

// Boundary placement policy names (also the benchmark row names).
const (
	BoundaryPolicyNIC  = "static-nic"
	BoundaryPolicyHost = "static-host"
	BoundaryPolicyDyn  = "dynamic"
)

// boundaryPhases are the reporting/verdict segments of the load curve.
var boundaryPhases = []string{"trough", "peak", "trough2"}

// Boundary workload IDs (21-23; the contention set owns 11-13).
const (
	boundaryWebID   uint32 = 21
	boundaryMidID   uint32 = 22
	boundaryHeavyID uint32 = 23
)

// BoundaryConfig sizes the dynamic-placement experiment.
type BoundaryConfig struct {
	// NICs is the rack size (default 4); each NIC is down-binned to
	// 1 island × 1 core × 2 threads so saturation shows at sane rates.
	NICs int
	// PoolMin is the autoscaler's floor on the active NIC pool
	// (default 2).
	PoolMin int
	// Per-class open-loop arrival rates (req/s) in the trough and peak
	// phases. CrowdRate is the extra web-only rate during the flash
	// crowd at the start of the peak.
	WebTroughRate, WebPeakRate, CrowdRate float64
	MidTroughRate, MidPeakRate            float64
	HeavyTroughRate, HeavyPeakRate        float64
	// Phase durations: the curve is trough, then peak (whose first
	// CrowdDur carries the flash crowd), then a second trough.
	TroughDur, PeakDur, Trough2Dur, CrowdDur time.Duration
	// MidSweeps/HeavySweeps size the sweepers' EMEM scans;
	// HeavyGILFraction is the heavy lambda's serialized share on the
	// host (low: it releases the GIL into the parallel compute pool).
	MidSweeps, HeavySweeps int
	HeavyGILFraction       float64
	// TickEvery is the control-loop period (autoscaler + placement).
	TickEvery time.Duration
	// ProbeEvery is the shadow-probe period: per class and side, one
	// probe request keeps latency evidence fresh for the engine.
	ProbeEvery time.Duration
	// TargetPerReplica is the autoscaler's per-NIC rate target.
	TargetPerReplica float64
	// ScaleCooldown is the autoscaler cooldown.
	ScaleCooldown time.Duration
	// WarmDelay models target-side warm-up during migration.
	WarmDelay time.Duration
	// Margin/LatencyAlpha/PlaceCooldown parameterize the engine (see
	// placement.Config); PlaceCooldown doubles as MinDwell, and must be
	// long enough for a drained source's queueing to wash out of the
	// latency EWMAs before the next decision round.
	Margin, LatencyAlpha float64
	PlaceCooldown        time.Duration
	// P99Tolerance is the verdict's slack on the per-phase p99
	// comparison (default 1.10: within 10% counts as "no worse").
	P99Tolerance float64
}

// DefaultBoundary returns the full-size experiment.
func DefaultBoundary() BoundaryConfig {
	return BoundaryConfig{
		NICs:             4,
		PoolMin:          2,
		WebTroughRate:    4_000,
		WebPeakRate:      40_000,
		CrowdRate:        60_000,
		MidTroughRate:    2_000,
		MidPeakRate:      30_000,
		HeavyTroughRate:  100,
		HeavyPeakRate:    1_200,
		TroughDur:        30 * time.Millisecond,
		PeakDur:          40 * time.Millisecond,
		Trough2Dur:       30 * time.Millisecond,
		CrowdDur:         8 * time.Millisecond,
		MidSweeps:        100,
		HeavySweeps:      8_000,
		HeavyGILFraction: 0.05,
		TickEvery:        500 * time.Microsecond,
		ProbeEvery:       20 * time.Millisecond,
		TargetPerReplica: 20_000,
		ScaleCooldown:    2 * time.Millisecond,
		WarmDelay:        500 * time.Microsecond,
		Margin:           0.25,
		LatencyAlpha:     0.05,
		PlaceCooldown:    10 * time.Millisecond,
		P99Tolerance:     1.10,
	}
}

// QuickBoundary returns a reduced configuration for tests and smoke
// runs: same rates (the physics needs them), half the wall time.
func QuickBoundary() BoundaryConfig {
	c := DefaultBoundary()
	c.TroughDur = 15 * time.Millisecond
	c.PeakDur = 20 * time.Millisecond
	c.Trough2Dur = 15 * time.Millisecond
	c.CrowdDur = 4 * time.Millisecond
	c.ProbeEvery = 10 * time.Millisecond
	return c
}

func (c BoundaryConfig) withDefaults() BoundaryConfig {
	d := DefaultBoundary()
	if c.NICs <= 0 {
		c.NICs = d.NICs
	}
	if c.PoolMin <= 0 || c.PoolMin > c.NICs {
		c.PoolMin = min(d.PoolMin, c.NICs)
	}
	if c.WebTroughRate <= 0 {
		c.WebTroughRate = d.WebTroughRate
	}
	if c.WebPeakRate <= 0 {
		c.WebPeakRate = d.WebPeakRate
	}
	if c.CrowdRate < 0 {
		c.CrowdRate = d.CrowdRate
	}
	if c.MidTroughRate <= 0 {
		c.MidTroughRate = d.MidTroughRate
	}
	if c.MidPeakRate <= 0 {
		c.MidPeakRate = d.MidPeakRate
	}
	if c.HeavyTroughRate <= 0 {
		c.HeavyTroughRate = d.HeavyTroughRate
	}
	if c.HeavyPeakRate <= 0 {
		c.HeavyPeakRate = d.HeavyPeakRate
	}
	if c.TroughDur <= 0 {
		c.TroughDur = d.TroughDur
	}
	if c.PeakDur <= 0 {
		c.PeakDur = d.PeakDur
	}
	if c.Trough2Dur <= 0 {
		c.Trough2Dur = d.Trough2Dur
	}
	if c.CrowdDur <= 0 || c.CrowdDur > c.PeakDur {
		c.CrowdDur = min(d.CrowdDur, c.PeakDur)
	}
	if c.MidSweeps <= 0 {
		c.MidSweeps = d.MidSweeps
	}
	if c.HeavySweeps <= 0 {
		c.HeavySweeps = d.HeavySweeps
	}
	if c.HeavyGILFraction <= 0 || c.HeavyGILFraction > 1 {
		c.HeavyGILFraction = d.HeavyGILFraction
	}
	if c.TickEvery <= 0 {
		c.TickEvery = d.TickEvery
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = d.ProbeEvery
	}
	if c.TargetPerReplica <= 0 {
		c.TargetPerReplica = d.TargetPerReplica
	}
	if c.ScaleCooldown <= 0 {
		c.ScaleCooldown = d.ScaleCooldown
	}
	if c.WarmDelay <= 0 {
		c.WarmDelay = d.WarmDelay
	}
	if c.Margin <= 0 {
		c.Margin = d.Margin
	}
	if c.LatencyAlpha <= 0 {
		c.LatencyAlpha = d.LatencyAlpha
	}
	if c.PlaceCooldown <= 0 {
		c.PlaceCooldown = d.PlaceCooldown
	}
	if c.P99Tolerance <= 1 {
		c.P99Tolerance = d.P99Tolerance
	}
	return c
}

// totalDur is the schedule horizon.
func (c BoundaryConfig) totalDur() time.Duration {
	return c.TroughDur + c.PeakDur + c.Trough2Dur
}

// workloadSet builds fresh per-run copies of the three classes. The
// heavy sweeper's GIL fraction is lowered: on the host it spends most
// of its time in the parallel compute pool, which is exactly what makes
// the host the right side for it.
func (c BoundaryConfig) workloadSet() []*workloads.Workload {
	web := workloads.WebServerVariant("bnd_web", boundaryWebID)
	mid := workloads.BatchSweeperVariant("bnd_mid", boundaryMidID, c.MidSweeps)
	heavy := workloads.BatchSweeperVariant("bnd_heavy", boundaryHeavyID, c.HeavySweeps)
	heavy.Profile.GILFraction = c.HeavyGILFraction
	return []*workloads.Workload{web, mid, heavy}
}

// testbed down-bins the rack's NICs to 2 NPU threads each (1 island ×
// 1 core), so one heavy request visibly occupies half a NIC.
func (c BoundaryConfig) testbed(cfg Config) cluster.Testbed {
	tb := cfg.Testbed
	tb.NIC.Islands = 1
	tb.NIC.CoresPerIsland = 1
	tb.NIC.ThreadsPerCore = 2
	return tb
}

// boundaryArrival is one scheduled request of the shared load curve.
type boundaryArrival struct {
	at    sim.Time
	class int // index into the workload set
	phase int // index into boundaryPhases, by arrival time
	idx   int
}

// boundarySchedule pre-draws the diurnal curve: per class, exponential
// interarrivals at the phase's rate, plus the web-only flash crowd at
// the start of the peak. All randomness comes from a seeded generator;
// nothing depends on the simulator's RNG.
func boundarySchedule(cfg Config, bc BoundaryConfig) []boundaryArrival {
	t1 := sim.Time(bc.TroughDur)
	t2 := t1 + sim.Time(bc.PeakDur)
	t3 := t2 + sim.Time(bc.Trough2Dur)
	phaseOf := func(at sim.Time) int {
		switch {
		case at < t1:
			return 0
		case at < t2:
			return 1
		default:
			return 2
		}
	}

	type segment struct {
		from, to sim.Time
		rate     float64
	}
	var arrivals []boundaryArrival
	draw := func(class int, salt int64, segs []segment) {
		rng := rand.New(rand.NewSource(int64(cfg.Seed) ^ salt))
		idx := 0
		for _, seg := range segs {
			if seg.rate <= 0 {
				continue
			}
			// The first gap is drawn too, so segment starts are not
			// synchronized arrival bursts.
			at := seg.from + sim.Time(rng.ExpFloat64()/seg.rate*float64(time.Second))
			for at < seg.to {
				arrivals = append(arrivals, boundaryArrival{at: at, class: class, phase: phaseOf(at), idx: idx})
				idx++
				at += sim.Time(rng.ExpFloat64() / seg.rate * float64(time.Second))
			}
		}
	}

	crowdEnd := t1 + sim.Time(bc.CrowdDur)
	draw(0, 0x0b1d, []segment{
		{0, t1, bc.WebTroughRate},
		{t1, t2, bc.WebPeakRate},
		{t1, crowdEnd, bc.CrowdRate}, // flash crowd at the ramp
		{t2, t3, bc.WebTroughRate},
	})
	draw(1, 0x0b2d, []segment{
		{0, t1, bc.MidTroughRate},
		{t1, t2, bc.MidPeakRate},
		{t2, t3, bc.MidTroughRate},
	})
	draw(2, 0x0b3d, []segment{
		{0, t1, bc.HeavyTroughRate},
		{t1, t2, bc.HeavyPeakRate},
		{t2, t3, bc.HeavyTroughRate},
	})

	// Deterministic global order: by time, class, then sequence.
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		if arrivals[i].class != arrivals[j].class {
			return arrivals[i].class < arrivals[j].class
		}
		return arrivals[i].idx < arrivals[j].idx
	})
	return arrivals
}

// BoundaryPhaseStat is one policy's outcome over one phase of the
// curve (attributed by arrival time, so overload backlogs charge the
// phase that caused them).
type BoundaryPhaseStat struct {
	Phase          string
	Requests       int
	Errors         int
	P50, P99, P999 time.Duration
}

// BoundaryPolicyStat is one policy's outcome over the full run.
type BoundaryPolicyStat struct {
	Policy   string
	Requests int
	Errors   int
	// Latency percentiles over successful requests (shadow probes
	// excluded), overall and per phase.
	P50, P99, P999 time.Duration
	Phases         []BoundaryPhaseStat
	// Migrations counts completed boundary moves; Moves is the decision
	// log; ScaleOps counts NIC pool resizes (dynamic only).
	Migrations uint64
	Moves      []placement.Decision
	ScaleOps   int
	// NICCoreSeconds is the provisioned NIC-core·time integral: active
	// pool size × NPU cores per NIC, integrated over the run. The cost
	// axis of the Pareto claim.
	NICCoreSeconds float64
	// Executed / FinalClock fingerprint the policy's simulation run:
	// Boundary and BoundaryParallel produce identical values.
	Executed   uint64
	FinalClock time.Duration
}

// BoundaryReport is the experiment's outcome.
type BoundaryReport struct {
	Rows []BoundaryPolicyStat
	// Domains is per policy run (1 serial; 2+NICs parallel).
	Domains int
	// Pareto is the verdict: dynamic's p99 is within tolerance of the
	// better static policy in every phase and overall, at strictly
	// lower NIC-core cost than static-nic.
	Pareto bool
}

// Row returns the named policy's stats (nil if absent).
func (r *BoundaryReport) Row(policy string) *BoundaryPolicyStat {
	for i := range r.Rows {
		if r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// boundaryTopology is the seam between the harness and one policy's
// cluster: a NIC route, a host route, and the run/fingerprint hooks.
type boundaryTopology struct {
	ctrl     *sim.Sim
	nic      func(name string, id uint32, payload []byte, done func(backend.Result))
	host     func(id uint32, payload []byte, done func(backend.Result))
	run      func() error
	executed func() uint64
	clock    func() sim.Time
	domains  int
}

func boundaryNIC(cfg Config, bc BoundaryConfig, s *sim.Sim, wls []*workloads.Workload) (*backend.LambdaNIC, error) {
	b, err := backend.NewLambdaNIC(s, bc.testbed(cfg), nicsim.DispatchUniform)
	if err != nil {
		return nil, fmt.Errorf("boundary: %w", err)
	}
	if err := b.Deploy(wls); err != nil {
		return nil, fmt.Errorf("boundary: %w", err)
	}
	return b, nil
}

func boundaryHost(cfg Config, s *sim.Sim, wls []*workloads.Workload) (*backend.Host, error) {
	h, err := backend.NewBareMetalQuiet(s, cfg.Testbed)
	if err != nil {
		return nil, fmt.Errorf("boundary: %w", err)
	}
	if err := h.Deploy(wls); err != nil {
		return nil, fmt.Errorf("boundary: %w", err)
	}
	return h, nil
}

// Boundary runs all three policies with each cluster on one clock.
func Boundary(cfg Config, bc BoundaryConfig) (*BoundaryReport, error) {
	bc = bc.withDefaults()
	sched := boundarySchedule(cfg, bc)
	names := chaosNames(bc.NICs)
	rep := &BoundaryReport{Domains: 1}
	for _, policy := range []string{BoundaryPolicyNIC, BoundaryPolicyHost, BoundaryPolicyDyn} {
		wls := bc.workloadSet()
		s := cfg.newSim()
		nics := make(map[string]*backend.LambdaNIC, bc.NICs)
		for _, name := range names {
			b, err := boundaryNIC(cfg, bc, s, wls)
			if err != nil {
				return nil, err
			}
			nics[name] = b
		}
		host, err := boundaryHost(cfg, s, wls)
		if err != nil {
			return nil, err
		}
		topo := &boundaryTopology{
			ctrl: s,
			nic: func(name string, id uint32, payload []byte, done func(backend.Result)) {
				nics[name].InvokeTraced(id, payload, nil, done)
			},
			host: func(id uint32, payload []byte, done func(backend.Result)) {
				host.InvokeTraced(id, payload, nil, done)
			},
			run:      s.RunUntilIdle,
			executed: func() uint64 { return s.Executed },
			clock:    s.Now,
			domains:  1,
		}
		row, err := boundaryRun(cfg, bc, wls, names, topo, sched, policy)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Pareto = boundaryVerdict(bc, rep)
	return rep, nil
}

// BoundaryParallel runs the same three clusters with each NIC and the
// host in their own simulation domains under the conservative parallel
// coordinator; wire hops cost exactly one scheduled event each, as in
// the serial path, so the report is bit-identical to Boundary.
func BoundaryParallel(cfg Config, bc BoundaryConfig) (*BoundaryReport, error) {
	bc = bc.withDefaults()
	sched := boundarySchedule(cfg, bc)
	names := chaosNames(bc.NICs)
	tb := bc.testbed(cfg)
	rep := &BoundaryReport{Domains: 2 + bc.NICs}
	for _, policy := range []string{BoundaryPolicyNIC, BoundaryPolicyHost, BoundaryPolicyDyn} {
		wls := bc.workloadSet()
		p := sim.NewParallel(tb.Link.OneWay(0))
		ctrl := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
		doms := make(map[string]*sim.Domain, bc.NICs)
		nics := make(map[string]*backend.LambdaNIC, bc.NICs)
		for _, name := range names {
			d := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
			b, err := boundaryNIC(cfg, bc, d.Sim, wls)
			if err != nil {
				return nil, err
			}
			doms[name], nics[name] = d, b
		}
		hd := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
		host, err := boundaryHost(cfg, hd.Sim, wls)
		if err != nil {
			return nil, err
		}
		topo := &boundaryTopology{
			ctrl: ctrl.Sim,
			nic: func(name string, id uint32, payload []byte, done func(backend.Result)) {
				d, b := doms[name], nics[name]
				ctrl.Send(d.ID(), b.WireDelay(len(payload)), func() {
					b.InvokeDelivered(id, payload, nil, func(res backend.Result, back sim.Time) {
						d.Send(ctrl.ID(), back, func() { done(res) })
					})
				})
			},
			host: func(id uint32, payload []byte, done func(backend.Result)) {
				ctrl.Send(hd.ID(), host.WireDelay(len(payload)), func() {
					host.InvokeDelivered(id, payload, nil, func(res backend.Result, back sim.Time) {
						hd.Send(ctrl.ID(), back, func() { done(res) })
					})
				})
			},
			run:      p.RunUntilIdle,
			executed: p.Executed,
			clock:    p.Clock,
			domains:  2 + len(names),
		}
		row, err := boundaryRun(cfg, bc, wls, names, topo, sched, policy)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Pareto = boundaryVerdict(bc, rep)
	return rep, nil
}

// boundaryRun is the topology-independent harness for one policy:
// replay the shared schedule through the policy's routing, and — for
// the dynamic policy — run the control loop (autoscaler pool sizing,
// shadow probes, placement engine, three-step migrations) on the
// virtual clock.
func boundaryRun(cfg Config, bc BoundaryConfig, wls []*workloads.Workload, names []string, topo *boundaryTopology, sched []boundaryArrival, policy string) (BoundaryPolicyStat, error) {
	s := topo.ctrl
	end := sim.Time(bc.totalDur())
	nicThreads := float64(2) // per down-binned NIC
	hostThreads := float64(cfg.Testbed.Host.PhysicalCores * cfg.Testbed.Host.ThreadsPerCore)

	// Routing state. classLoc flips at migration cutover; pool is the
	// autoscaler-sized active prefix of the rack.
	classLoc := make([]placement.Location, len(wls))
	for i := range classLoc {
		classLoc[i] = placement.LocNIC
	}
	pool := bc.NICs
	if policy == BoundaryPolicyDyn {
		pool = bc.PoolMin
	}
	var (
		rr                        int
		nicInflight, hostInflight int
		perClassInflight          [][2]int // [class][side]; side 0 host, 1 nic
		pendingDrain              [][2]func()
		completions               uint64
		arrivalsThisTick          uint64
		scaleOps                  int
		errs                      int
		overall                   metrics.Sample
		phaseLat                  = make([]metrics.Sample, len(boundaryPhases))
		phaseReq                  = make([]int, len(boundaryPhases))
		phaseErr                  = make([]int, len(boundaryPhases))
		coreSeconds               float64
		lastPoolChange            sim.Time
	)
	perClassInflight = make([][2]int, len(wls))
	pendingDrain = make([][2]func(), len(wls))

	sideIdx := func(loc placement.Location) int {
		if loc == placement.LocNIC {
			return 1
		}
		return 0
	}
	classIdx := func(name string) int {
		for i, w := range wls {
			if w.Name == name {
				return i
			}
		}
		return -1
	}
	accrueCost := func(now sim.Time) {
		if policy != BoundaryPolicyHost {
			coreSeconds += float64(pool) * time.Duration(now-lastPoolChange).Seconds()
		}
		lastPoolChange = now
	}

	// dispatch routes one request (organic or probe) to an explicit
	// side and fires done with the measured round-trip.
	dispatch := func(class int, loc placement.Location, payload []byte, done func(err error, rtt time.Duration)) {
		side := sideIdx(loc)
		perClassInflight[class][side]++
		start := s.Now()
		finish := func(res backend.Result) {
			perClassInflight[class][side]--
			if fn := pendingDrain[class][side]; fn != nil && perClassInflight[class][side] == 0 {
				pendingDrain[class][side] = nil
				fn()
			}
			done(res.Err, time.Duration(s.Now()-start))
		}
		if loc == placement.LocNIC {
			nicInflight++
			w := rr % pool
			rr++
			topo.nic(names[w], wls[class].ID, payload, func(res backend.Result) {
				nicInflight--
				finish(res)
			})
		} else {
			hostInflight++
			topo.host(wls[class].ID, payload, func(res backend.Result) {
				hostInflight--
				finish(res)
			})
		}
	}

	// Dynamic policy: control plane.
	var (
		eng    *placement.Engine
		coord  *placement.Coordinator
		scaler *autoscale.Autoscaler
	)
	if policy == BoundaryPolicyDyn {
		tb := bc.testbed(cfg)
		eng = placement.New(placement.Config{
			InstrStorePerCore: tb.NIC.InstrStorePerCore,
			LatencyAlpha:      bc.LatencyAlpha,
			Margin:            bc.Margin,
			MinDwell:          bc.PlaceCooldown,
			Cooldown:          bc.PlaceCooldown,
			MaxMoves:          1,
		})
		for _, w := range wls {
			exe, _, err := workloads.CompileOptimized([]*workloads.Workload{w}, workloads.NaiveProgramTarget)
			if err != nil {
				return BoundaryPolicyStat{}, fmt.Errorf("boundary: footprint %s: %w", w.Name, err)
			}
			eng.Register(w.Name, exe.Footprint(), placement.LocNIC)
		}
		fab := &boundaryFabric{
			warm: func(ready func()) { s.Schedule(sim.Time(bc.WarmDelay), ready) },
			cutover: func(w string, to placement.Location) {
				if ci := classIdx(w); ci >= 0 {
					classLoc[ci] = to
				}
			},
			drain: func(w string, from placement.Location, drained func()) {
				ci := classIdx(w)
				if ci < 0 {
					drained()
					return
				}
				side := sideIdx(from)
				if perClassInflight[ci][side] == 0 {
					drained()
					return
				}
				pendingDrain[ci][side] = drained
			},
		}
		coord = placement.NewCoordinator(eng, fab, func() time.Duration { return time.Duration(s.Now()) })

		var err error
		scaler, err = autoscale.New(autoscale.Policy{
			TargetPerReplica: bc.TargetPerReplica,
			MinReplicas:      bc.PoolMin,
			MaxReplicas:      bc.NICs,
			UpThreshold:      1.2,
			DownThreshold:    0.5,
			Cooldown:         bc.ScaleCooldown,
			Smoothing:        0.5,
		})
		if err != nil {
			return BoundaryPolicyStat{}, fmt.Errorf("boundary: %w", err)
		}
		scaler.Track("pool", bc.PoolMin)

		// Shadow probes: per class and side, a low-rate probe request
		// keeps the engine's latency EWMAs fresh for the side organic
		// traffic is not visiting. Probes ride the real datapath (they
		// queue like everything else) but are excluded from the
		// latency samples and the autoscaler's rate signal.
		for ci := range wls {
			ci := ci
			for probeAt := sim.Time(0); probeAt < end; probeAt += sim.Time(bc.ProbeEvery) {
				for _, loc := range []placement.Location{placement.LocNIC, placement.LocHost} {
					loc := loc
					s.ScheduleAt(probeAt, func() {
						payload := wls[ci].MakeRequest(0)
						dispatch(ci, loc, payload, func(err error, rtt time.Duration) {
							if err == nil {
								eng.ObserveLatency(wls[ci].Name, loc, rtt)
							}
						})
					})
				}
			}
		}

		// Control loop: pool sizing from the arrival rate (demand, not
		// throughput — under overload completions lie), then placement.
		// Boundary moves are gated on the pool being at max: scale out
		// first, re-split the boundary only when the whole rack is not
		// enough.
		var tickEv *sim.Event
		var tick func()
		tick = func() {
			now := time.Duration(s.Now())
			arr := arrivalsThisTick
			arrivalsThisTick = 0
			if err := scaler.Observe("pool", arr, bc.TickEvery); err == nil {
				for _, d := range scaler.Decide(time.Unix(0, int64(now))) {
					accrueCost(s.Now())
					pool = d.To
					scaleOps++
				}
			}
			// In-flight counts include queued work, so the raw signal is
			// unbounded under overload; saturate it so backlog spikes
			// register as "overloaded" without drowning the latency
			// evidence (which knows *which* lambda is worth moving).
			clamp := func(x float64) float64 { return math.Min(x, 2) }
			eng.ObserveLoad(
				clamp(float64(nicInflight)/(float64(pool)*nicThreads)),
				clamp(float64(hostInflight)/hostThreads),
			)
			if pool == bc.NICs {
				coord.Run(now)
			}
			if s.Now() < end {
				tickEv = s.Reschedule(tickEv, sim.Time(bc.TickEvery))
			}
		}
		tickEv = s.Schedule(sim.Time(bc.TickEvery), tick)
	}

	// Replay the shared schedule.
	for _, a := range sched {
		a := a
		payload := wls[a.class].MakeRequest(a.idx)
		s.ScheduleAt(a.at, func() {
			arrivalsThisTick++
			loc := classLoc[a.class]
			if policy == BoundaryPolicyHost {
				loc = placement.LocHost
			} else if policy == BoundaryPolicyNIC {
				loc = placement.LocNIC
			}
			dispatch(a.class, loc, payload, func(err error, rtt time.Duration) {
				completions++
				phaseReq[a.phase]++
				if err != nil {
					errs++
					phaseErr[a.phase]++
					return
				}
				overall.AddDuration(rtt)
				phaseLat[a.phase].AddDuration(rtt)
				if eng != nil {
					eng.ObserveLatency(wls[a.class].Name, loc, rtt)
				}
			})
		})
	}

	if err := topo.run(); err != nil {
		return BoundaryPolicyStat{}, fmt.Errorf("boundary/%s: %w", policy, err)
	}
	accrueCost(topo.clock())
	if policy == BoundaryPolicyHost {
		coreSeconds = 0
	}

	row := BoundaryPolicyStat{
		Policy:         policy,
		Requests:       len(sched),
		Errors:         errs,
		P50:            time.Duration(overall.P50() * float64(time.Second)),
		P99:            time.Duration(overall.P99() * float64(time.Second)),
		P999:           time.Duration(overall.P999() * float64(time.Second)),
		ScaleOps:       scaleOps,
		NICCoreSeconds: coreSeconds,
		Executed:       topo.executed(),
		FinalClock:     time.Duration(topo.clock()),
	}
	if eng != nil {
		row.Migrations = eng.Migrations()
		row.Moves = eng.History()
	}
	for i, name := range boundaryPhases {
		row.Phases = append(row.Phases, BoundaryPhaseStat{
			Phase:    name,
			Requests: phaseReq[i],
			Errors:   phaseErr[i],
			P50:      time.Duration(phaseLat[i].P50() * float64(time.Second)),
			P99:      time.Duration(phaseLat[i].P99() * float64(time.Second)),
			P999:     time.Duration(phaseLat[i].P999() * float64(time.Second)),
		})
	}
	return row, nil
}

// boundaryFabric adapts harness closures to placement.Fabric.
type boundaryFabric struct {
	warm    func(ready func())
	cutover func(workload string, to placement.Location)
	drain   func(workload string, from placement.Location, drained func())
}

func (f *boundaryFabric) Warm(w string, to placement.Location, ready func()) { f.warm(ready) }
func (f *boundaryFabric) Cutover(w string, to placement.Location)            { f.cutover(w, to) }
func (f *boundaryFabric) Drain(w string, from placement.Location, drained func()) {
	f.drain(w, from, drained)
}

// boundaryVerdict: the dynamic policy Pareto-dominates iff its p99 is
// within tolerance of the better static policy in every phase and
// overall, it migrated at least once, served everything, and burned
// strictly less NIC-core·time than static-nic.
func boundaryVerdict(bc BoundaryConfig, rep *BoundaryReport) bool {
	sn, sh, dyn := rep.Row(BoundaryPolicyNIC), rep.Row(BoundaryPolicyHost), rep.Row(BoundaryPolicyDyn)
	if sn == nil || sh == nil || dyn == nil {
		return false
	}
	if dyn.Errors != 0 || dyn.Migrations == 0 {
		return false
	}
	tol := bc.P99Tolerance
	better := func(a, b time.Duration) time.Duration {
		if a < b {
			return a
		}
		return b
	}
	if dyn.P99 <= 0 || float64(dyn.P99) > tol*float64(better(sn.P99, sh.P99)) {
		return false
	}
	for i := range dyn.Phases {
		best := better(sn.Phases[i].P99, sh.Phases[i].P99)
		if dyn.Phases[i].P99 <= 0 || float64(dyn.Phases[i].P99) > tol*float64(best) {
			return false
		}
	}
	return dyn.NICCoreSeconds < sn.NICCoreSeconds
}

// Bench converts the report to the benchmark-artifact schema
// (BENCH_boundary.json): one row per policy plus per-phase rows, with
// virtual-clock percentiles suitable for benchio.GuardLatency.
func (r *BoundaryReport) Bench() benchio.Report {
	rep := benchio.Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, row := range r.Rows {
		res := benchio.Result{
			Name:      "boundary/" + row.Policy,
			Transport: "nicsim",
			Mode:      "open",
			Requests:  row.Requests,
			Errors:    row.Errors,
			P50Ns:     row.P50.Nanoseconds(),
			P99Ns:     row.P99.Nanoseconds(),
			P999Ns:    row.P999.Nanoseconds(),
		}
		if d := row.FinalClock.Seconds(); d > 0 {
			res.ReqPerSec = float64(row.Requests) / d
		}
		rep.Results = append(rep.Results, res)
		for _, ph := range row.Phases {
			rep.Results = append(rep.Results, benchio.Result{
				Name:      "boundary/" + row.Policy + "/" + ph.Phase,
				Transport: "nicsim",
				Mode:      "open",
				Requests:  ph.Requests,
				Errors:    ph.Errors,
				P50Ns:     ph.P50.Nanoseconds(),
				P99Ns:     ph.P99.Nanoseconds(),
				P999Ns:    ph.P999.Nanoseconds(),
			})
		}
	}
	return rep
}

// RenderBoundary prints the boundary report.
func RenderBoundary(rep *BoundaryReport) string {
	var b strings.Builder
	verdict := "NOT MET"
	if rep.Pareto {
		verdict = "met"
	}
	fmt.Fprintf(&b, "Boundary: dynamic NIC/host placement vs static split (Pareto %s)\n", verdict)
	fmt.Fprintf(&b, "  %-12s %9s %7s %9s %9s %11s %5s %6s\n",
		"policy", "requests", "errors", "p50", "p99", "core·ms", "mig", "scale")
	for _, row := range rep.Rows {
		fmt.Fprintf(&b, "  %-12s %9d %7d %9v %9v %11.2f %5d %6d\n",
			row.Policy, row.Requests, row.Errors, row.P50, row.P99,
			row.NICCoreSeconds*1e3, row.Migrations, row.ScaleOps)
		for _, ph := range row.Phases {
			fmt.Fprintf(&b, "    %-10s %9d %7d %9v %9v\n",
				ph.Phase, ph.Requests, ph.Errors, ph.P50, ph.P99)
		}
		for _, m := range row.Moves {
			fmt.Fprintf(&b, "    move @%-9v %s %s->%s (%s)\n",
				m.At, m.Workload, m.From, m.To, m.Reason)
		}
	}
	if len(rep.Rows) > 0 {
		fmt.Fprintf(&b, "  fingerprint: %d domains", rep.Domains)
		for _, row := range rep.Rows {
			fmt.Fprintf(&b, " %s=%d@%v", row.Policy, row.Executed, row.FinalClock)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
