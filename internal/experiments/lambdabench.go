package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"lambdanic/internal/benchio"
	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/workloads"
)

// LambdaBenchConfig sizes the lambda execution-engine benchmark
// (lnic-bench -experiment lambdabench). Like rpcbench it measures the
// real Go implementation in wall-clock time, not the simulated clock:
// the same optimized Match+Lambda firmware is linked once per execution
// engine and driven with the paper workloads, so the numbers track the
// compiled engine's advantage over the reference interpreter across
// PRs.
type LambdaBenchConfig struct {
	// Duration is the measurement window per workload and engine.
	Duration time.Duration
	// ImageWidth/ImageHeight size the grayscale workload's image.
	ImageWidth  int
	ImageHeight int
}

// DefaultLambdaBench returns the tracked benchmark configuration. The
// image is kept benchmark-sized (64x64, a 12-packet RDMA payload)
// rather than the paper's 512x512 so the per-request engine overhead
// is not drowned by the bulk grayscale loop both engines share.
func DefaultLambdaBench() LambdaBenchConfig {
	return LambdaBenchConfig{
		Duration:    time.Second,
		ImageWidth:  64,
		ImageHeight: 64,
	}
}

// QuickLambdaBench returns a smoke-run configuration for -quick/-short.
func QuickLambdaBench() LambdaBenchConfig {
	return LambdaBenchConfig{
		Duration:    100 * time.Millisecond,
		ImageWidth:  16,
		ImageHeight: 16,
	}
}

// lambdaBenchEngines is the benchmarked engine matrix; the engine name
// lands in the Result's Transport column.
var lambdaBenchEngines = []mcc.Engine{mcc.EngineInterp, mcc.EngineCompiled}

// LambdaBench links the optimized paper program once per execution
// engine and measures ns/op and allocs/op for the web, key-value get,
// and grayscale lambdas on each, returning the report written to
// BENCH_lambda.json. Before measuring, every workload's response is
// checked byte-for-byte across engines (the differential invariant the
// compiled engine is built on) — which doubles as warmup, taking the
// runtime library's one-time init off the measured path.
func LambdaBench(cfg LambdaBenchConfig) (benchio.Report, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.ImageWidth < 1 || cfg.ImageHeight < 1 {
		cfg.ImageWidth, cfg.ImageHeight = 64, 64
	}

	ws := []*workloads.Workload{
		workloads.WebServer(),
		workloads.KVGetClient(),
		workloads.ImageTransformer(cfg.ImageWidth, cfg.ImageHeight),
	}

	exes := make(map[mcc.Engine]*mcc.Executable, len(lambdaBenchEngines))
	for _, eng := range lambdaBenchEngines {
		exe, _, err := workloads.CompileOptimizedWith(ws, workloads.NaiveProgramTarget,
			mcc.LinkOptions{Engine: eng})
		if err != nil {
			return benchio.Report{}, fmt.Errorf("lambdabench: link %s: %w", eng, err)
		}
		exes[eng] = exe
	}

	// Prebuild one request per workload so request construction stays
	// off the measured path.
	reqs := make([]*nicsim.Request, len(ws))
	for i, w := range ws {
		payload := w.MakeRequest(7)
		reqs[i] = &nicsim.Request{
			LambdaID: w.ID,
			Payload:  payload,
			Packets:  workloads.Packets(len(payload)),
		}
	}

	// Cross-engine response check + warmup.
	for i, w := range ws {
		var resp [2][]byte
		for j, eng := range lambdaBenchEngines {
			var got []byte
			for k := 0; k < 3; k++ {
				if err := exes[eng].ExecutePooled(reqs[i], func(r nicsim.Response) {
					got = append(got[:0], r.Payload...)
				}); err != nil {
					return benchio.Report{}, fmt.Errorf("lambdabench: warm %s/%s: %w", w.Name, eng, err)
				}
			}
			resp[j] = got
		}
		if !bytes.Equal(resp[0], resp[1]) {
			return benchio.Report{}, fmt.Errorf("lambdabench: %s: engine responses diverge (%d vs %d bytes)",
				w.Name, len(resp[0]), len(resp[1]))
		}
	}

	var results []benchio.Result
	for i, w := range ws {
		for _, eng := range lambdaBenchEngines {
			exe, req := exes[eng], reqs[i]
			call := func() error { return exe.ExecutePooled(req, nil) }
			results = append(results,
				benchio.ClosedLoop(w.Name, eng.String(), 1, cfg.Duration, call))
		}
	}
	return benchio.NewReport(results), nil
}

// RenderLambdaBench formats the report as a text table with a speedup
// column (interpreter p50 over compiled p50, per workload).
func RenderLambdaBench(rep benchio.Report) string {
	interp := make(map[string]benchio.Result)
	for _, r := range rep.Results {
		if r.Transport == mcc.EngineInterp.String() {
			interp[r.Name] = r
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Lambda execution-engine benchmark (%s, GOMAXPROCS=%d)\n",
		rep.GoVersion, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%-18s %-9s %11s %9s %9s %9s %8s\n",
		"workload", "engine", "req/s", "p50ns", "p99ns", "allocs", "speedup")
	for _, r := range rep.Results {
		speedup := "-"
		if r.Transport == mcc.EngineCompiled.String() {
			if base, ok := interp[r.Name]; ok && r.P50Ns > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(base.P50Ns)/float64(r.P50Ns))
			}
		}
		fmt.Fprintf(&b, "%-18s %-9s %11.0f %9d %9d %9.2f %8s\n",
			r.Name, r.Transport, r.ReqPerSec, r.P50Ns, r.P99Ns, r.AllocsPerOp, speedup)
	}
	return b.String()
}
