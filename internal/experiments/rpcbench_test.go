package experiments

import (
	"strings"
	"testing"
	"time"
)

func smokeRPCBench() RPCBenchConfig {
	return RPCBenchConfig{
		PayloadBytes:    32,
		Duration:        40 * time.Millisecond,
		Concurrencies:   []int{1, 2},
		OpenRPS:         2000,
		OpenMaxInflight: 32,
		UDP:             true,
	}
}

func TestRPCBenchProducesAllConfigurations(t *testing.T) {
	rep, err := RPCBench(smokeRPCBench(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 transports × (2 closed + 1 open).
	if len(rep.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(rep.Results))
	}
	transports := map[string]bool{}
	for _, r := range rep.Results {
		transports[r.Transport] = true
		if r.Requests == 0 {
			t.Errorf("%s/%s conc=%d: zero requests", r.Transport, r.Mode, r.Concurrency)
		}
		if r.Errors != 0 {
			t.Errorf("%s/%s conc=%d: %d errors", r.Transport, r.Mode, r.Concurrency, r.Errors)
		}
		if r.Mode == "closed" && r.ReqPerSec <= 0 {
			t.Errorf("%s closed: req/s = %f", r.Transport, r.ReqPerSec)
		}
	}
	if !transports["memnet"] || !transports["udp"] {
		t.Errorf("transports covered: %v", transports)
	}
}

func TestRPCBenchMemnetOnly(t *testing.T) {
	cfg := smokeRPCBench()
	cfg.UDP = false
	cfg.OpenRPS = 0
	rep, err := RPCBench(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Transport != "memnet" || r.Mode != "closed" {
			t.Errorf("unexpected result %s/%s", r.Transport, r.Mode)
		}
	}
}

func TestRenderRPCBench(t *testing.T) {
	rep, err := RPCBench(smokeRPCBench(), 1)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRPCBench(rep)
	for _, want := range []string{"req/s", "memnet", "udp", "closed", "open"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
