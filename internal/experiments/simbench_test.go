package experiments

import (
	"strings"
	"testing"
)

// tinySimBench keeps the unit test fast; the real sizes run under
// cmd/lnic-bench.
func tinySimBench() SimBenchConfig {
	return SimBenchConfig{
		Events:        5_000,
		Outstanding:   128,
		ScaleRequests: 30,
		NICs:          16,
		Domains:       []int{1, 4},
		Reps:          1,
	}
}

func TestSimBench(t *testing.T) {
	rep, err := SimBench(Quick(), tinySimBench())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"sched/heap", "sched/heap-pooled", "sched/ladder", "sched/ladder-pooled",
		"timers/heap", "timers/ladder",
		"scaleout16/domains=1", "scaleout16/domains=4",
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rep.Results), len(want), rep.Results)
	}
	byName := map[string]int{}
	for i, r := range rep.Results {
		byName[r.Name] = i
		if r.ReqPerSec <= 0 || r.Requests <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Name, r)
		}
	}
	for _, name := range want {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing row %s", name)
		}
	}

	// The domain packing must not change the work: identical fleets in
	// 1 and 4 domains fire identical event counts.
	d1 := rep.Results[byName["scaleout16/domains=1"]]
	d4 := rep.Results[byName["scaleout16/domains=4"]]
	if d1.Requests != d4.Requests {
		t.Errorf("domain packing changed event count: 1 domain fired %d, 4 domains %d",
			d1.Requests, d4.Requests)
	}

	// Identical sched scenarios across kernels fire identical counts.
	if a, b := rep.Results[byName["sched/heap"]].Requests,
		rep.Results[byName["sched/ladder"]].Requests; a != b {
		t.Errorf("sched event counts differ across kernels: heap=%d ladder=%d", a, b)
	}

	if out := RenderSimBench(rep); !strings.Contains(out, "scaleout16/domains=4") {
		t.Errorf("render missing rows:\n%s", out)
	}
}

func TestSimBenchRejectsBadDomains(t *testing.T) {
	sb := tinySimBench()
	sb.Domains = []int{3} // does not divide 16
	if _, err := SimBench(Quick(), sb); err == nil {
		t.Fatal("3 domains over 16 NICs should error")
	}
}
