package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/core"
	"lambdanic/internal/faults"
	"lambdanic/internal/healthd"
	"lambdanic/internal/metrics"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/obs"
	"lambdanic/internal/sim"
	"lambdanic/internal/telemetry"
	"lambdanic/internal/workloads"
)

// The chaos experiment closes the fault-tolerance loop end to end in
// virtual time: a worker-NIC fleet serves open-loop Poisson load
// through a failover router while workers heartbeat into the real
// control store (core.Manager over raftkv); a scripted fault timeline
// crash-stops one NIC mid-run; healthd's detector declares it dead from
// heartbeat silence; the manager evicts it and re-runs DRF placement
// over the survivors; and the router picks the shrunk route up through
// the placement watch. The report buckets every request into
// before/during/after phases around the kill and eviction instants, so
// availability, error rate, and tail latency show the outage window and
// the recovery — the serverless provider's view of the §7 failure
// story.

// ChaosConfig sizes the chaos experiment.
type ChaosConfig struct {
	// Workers is the worker-NIC fleet size (default 4, the testbed).
	Workers int
	// RatePerSec is the open-loop offered load (default 20,000 req/s).
	RatePerSec float64
	// Duration is the virtual run length (default 900 ms).
	Duration time.Duration
	// KillAt is when the victim NIC crash-stops (default Duration/3).
	KillAt time.Duration
	// HeartbeatInterval is the worker beat and detector check period
	// (default 10 ms).
	HeartbeatInterval time.Duration
	// SuspectAfter and EvictAfter are the detector's phi thresholds in
	// heartbeat intervals (healthd defaults when zero).
	SuspectAfter, EvictAfter float64
	// AttemptTimeout bounds one routed attempt; a crashed NIC is a
	// black hole, so this is the only failure signal (default 500 µs).
	AttemptTimeout time.Duration
	// Attempts is the per-request routing attempt budget (default 3).
	Attempts int
	// TraceSampleEvery keeps one request trace in every n (default 20).
	TraceSampleEvery int
}

// DefaultChaos returns the full-size chaos experiment.
func DefaultChaos() ChaosConfig {
	return ChaosConfig{
		Workers:           4,
		RatePerSec:        20_000,
		Duration:          900 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      healthd.DefaultSuspectAfter,
		EvictAfter:        healthd.DefaultEvictAfter,
		AttemptTimeout:    500 * time.Microsecond,
		Attempts:          3,
		TraceSampleEvery:  20,
	}
}

// QuickChaos returns a reduced configuration for tests and smoke runs.
func QuickChaos() ChaosConfig {
	cfg := DefaultChaos()
	cfg.RatePerSec = 8_000
	cfg.Duration = 240 * time.Millisecond
	cfg.HeartbeatInterval = 5 * time.Millisecond
	cfg.TraceSampleEvery = 1
	return cfg
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	d := DefaultChaos()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = d.RatePerSec
	}
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	if c.KillAt <= 0 {
		c.KillAt = c.Duration / 3
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = d.HeartbeatInterval
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = d.AttemptTimeout
	}
	if c.Attempts <= 0 {
		c.Attempts = d.Attempts
	}
	if c.TraceSampleEvery <= 0 {
		c.TraceSampleEvery = d.TraceSampleEvery
	}
	return c
}

// ChaosPhase summarizes the requests issued during one phase of the
// run.
type ChaosPhase struct {
	Name     string
	Start    time.Duration
	End      time.Duration
	Requests int
	Errors   int
	// Availability is the fraction of issued requests answered
	// successfully (failovers count as success — the client got a
	// response).
	Availability float64
	P50, P99     time.Duration
}

// ChaosReport is the chaos experiment's outcome.
type ChaosReport struct {
	// Phases are before (healthy fleet), during (NIC dead, not yet
	// evicted), and after (survivors only), bucketed by request start.
	Phases []ChaosPhase
	// Killed names the crashed worker.
	Killed string
	// KillAt and EvictedAt are the crash and eviction instants.
	KillAt    time.Duration
	EvictedAt time.Duration
	// RecoveryIntervals is the detection+eviction delay in heartbeat
	// intervals; the detector's design bound is EvictAfter+2 (DESIGN.md
	// "Fault tolerance").
	RecoveryIntervals float64
	HeartbeatInterval time.Duration
	// Failovers counts router retries onto another worker.
	Failovers uint64
	// Transitions is the detector's status-change log.
	Transitions []healthd.Transition
	// Survivors is the placement after eviction.
	Survivors []string
	// Executed is the total number of simulation events fired, summed
	// across domains when the run is parallel. Chaos and ChaosParallel
	// produce identical counts — the differential determinism check.
	Executed uint64
	// FinalClock is the virtual time of the last fired event (the most
	// advanced domain clock in a parallel run).
	FinalClock time.Duration
	// Domains is the number of simulation domains the run used (1 for
	// the shared-clock mode; 1 control + 1 per worker when parallel).
	Domains int
	// Requests and Marks feed the Chrome trace export; fault events
	// appear as global instant markers.
	Requests []*obs.Req
	Marks    []obs.Mark
	// SLO is the telemetry plane's judgment of the same run: objectives
	// sampled every heartbeat interval over a rolling window on the
	// simulation's virtual clock. The latency burn rate spikes during
	// the outage (failovers add an AttemptTimeout to every request that
	// first hits the dead NIC) and decays back once the window clears
	// the eviction.
	SLO *telemetry.SLOReport
}

// Chaos SLO objectives: the provider promises three nines of
// availability and a p99 no worse than one attempt timeout (a request
// that fails over has necessarily waited at least that long).
const (
	chaosAvailabilityTarget = 0.999
	chaosLatencyQuantile    = 0.99
)

// chaosRouter spreads requests round-robin over the placed workers with
// a per-attempt timeout and failover — the gateway's weakly-consistent
// delivery (D3) against a fleet that can lose members mid-run. Routes
// come from the control store's placement watch; the actual round trip
// to a worker goes through the topology's route function, so the router
// is oblivious to whether the fleet shares its clock.
type chaosRouter struct {
	s        *sim.Sim
	route    func(name string, id uint32, payload []byte, tr *obs.Req, done func(backend.Result))
	timeout  time.Duration
	attempts int

	workers   []string
	next      int
	failovers uint64
}

var errChaosNoRoute = errors.New("experiments: no live workers")
var errChaosTimeout = errors.New("experiments: attempts exhausted")

// setWorkers installs a new route (deduplicated, order preserved).
func (r *chaosRouter) setWorkers(ws []string) {
	seen := make(map[string]bool, len(ws))
	out := ws[:0:0]
	for _, w := range ws {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	r.workers = out
}

func (r *chaosRouter) invoke(id uint32, payload []byte, tr *obs.Req, attempt int, done func(backend.Result)) {
	if len(r.workers) == 0 {
		done(backend.Result{Err: errChaosNoRoute})
		return
	}
	name := r.workers[r.next%len(r.workers)]
	r.next++
	finished := false
	var timer *sim.Event
	fail := func(err error) {
		if attempt+1 < r.attempts {
			r.failovers++
			tr.Mark(obs.StageTransport, "router", "failover:"+name, r.s.Now())
			r.invoke(id, payload, tr, attempt+1, done)
			return
		}
		done(backend.Result{Err: err})
	}
	r.route(name, id, payload, tr, func(res backend.Result) {
		if finished {
			// A late response after the attempt timed out: the router
			// has already failed over.
			return
		}
		finished = true
		r.s.Cancel(timer)
		if res.Err != nil {
			fail(res.Err)
			return
		}
		done(res)
	})
	if !finished {
		timer = r.s.Schedule(r.timeout, func() {
			if finished {
				return
			}
			finished = true
			fail(errChaosTimeout)
		})
	}
}

// chaosSample is one completed request for phase bucketing.
type chaosSample struct {
	start   sim.Time
	latency time.Duration
	failed  bool
}

// chaosTopology is how the chaos harness reaches the worker fleet. The
// control plane — router, manager, detector, load generator, report —
// always lives on ctrl; the worker NICs either share that clock (Chaos)
// or run one simulation domain each under the conservative parallel
// coordinator (ChaosParallel). Everything above this seam is identical
// between the two modes, which is what makes the differential
// determinism check meaningful.
type chaosTopology struct {
	ctrl *sim.Sim
	// route performs one full round trip to the named worker — request
	// wire hop, NIC execution, response wire hop — calling done back on
	// ctrl's clock. A crashed worker is a black hole: done never fires.
	route func(name string, id uint32, payload []byte, tr *obs.Req, done func(backend.Result))
	// nic returns the named worker's device for fault application.
	nic func(name string) *nicsim.NIC
	// deviceAt schedules fn at t on the simulation owning the named
	// worker's device. Only called before run starts.
	deviceAt func(name string, t sim.Time, fn func())
	run      func() error
	executed func() uint64
	clock    func() sim.Time
	domains  int
}

func chaosNames(workers int) []string {
	names := make([]string, workers)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i+2)
	}
	return names
}

func newChaosNIC(cfg Config, s *sim.Sim, web *workloads.Workload) (*backend.LambdaNIC, error) {
	b, err := backend.NewLambdaNIC(s, cfg.Testbed, nicsim.DispatchUniform)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := b.Deploy([]*workloads.Workload{web}); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return b, nil
}

// Chaos runs the chaos experiment (see the package comment above) with
// the whole fleet on one clock and returns the phase report.
func Chaos(cfg Config, ch ChaosConfig) (*ChaosReport, error) {
	ch = ch.withDefaults()
	web := workloads.WebServer()
	names := chaosNames(ch.Workers)

	// Worker fleet: one simulated NIC per worker, all on one clock.
	s := cfg.newSim()
	nics := make(map[string]*backend.LambdaNIC, ch.Workers)
	for _, name := range names {
		b, err := newChaosNIC(cfg, s, web)
		if err != nil {
			return nil, err
		}
		nics[name] = b
	}
	topo := &chaosTopology{
		ctrl: s,
		route: func(name string, id uint32, payload []byte, tr *obs.Req, done func(backend.Result)) {
			nics[name].InvokeTraced(id, payload, tr, done)
		},
		nic:      func(name string) *nicsim.NIC { return nics[name].NIC() },
		deviceAt: func(name string, t sim.Time, fn func()) { s.At(t, fn) },
		run:      s.RunUntilIdle,
		executed: func() uint64 { return s.Executed },
		clock:    s.Now,
		domains:  1,
	}
	return chaosRun(cfg, ch, web, names, topo)
}

// ChaosParallel runs the same experiment with each worker NIC in its
// own simulation domain, synchronized to the control-plane domain by
// the inter-NIC link's minimum one-way latency (the lookahead). Wire
// hops become cross-domain messages: the request hop is a ctrl→worker
// Send of WireDelay(len(payload)), the response hop a worker→ctrl Send
// of the response's wire delay — each exactly one scheduled event, just
// like the Schedule calls of the shared-clock path, so event counts,
// clocks, and the report are bit-identical to Chaos while worker
// domains execute on separate cores. NIC-internal trace spans are
// skipped in this mode (the span container would cross goroutines);
// spans never schedule events, so timing is unaffected.
func ChaosParallel(cfg Config, ch ChaosConfig) (*ChaosReport, error) {
	ch = ch.withDefaults()
	web := workloads.WebServer()
	names := chaosNames(ch.Workers)

	// The lookahead is the link's propagation floor: every wire hop is
	// OneWay(n) >= OneWay(0), so Send's minimum-latency clamp never
	// engages and cross-domain timing matches the shared clock exactly.
	p := sim.NewParallel(cfg.Testbed.Link.OneWay(0))
	ctrl := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
	doms := make(map[string]*sim.Domain, ch.Workers)
	nics := make(map[string]*backend.LambdaNIC, ch.Workers)
	for _, name := range names {
		d := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
		b, err := newChaosNIC(cfg, d.Sim, web)
		if err != nil {
			return nil, err
		}
		doms[name], nics[name] = d, b
	}
	topo := &chaosTopology{
		ctrl: ctrl.Sim,
		route: func(name string, id uint32, payload []byte, tr *obs.Req, done func(backend.Result)) {
			d, b := doms[name], nics[name]
			ctrl.Send(d.ID(), b.WireDelay(len(payload)), func() {
				b.InvokeDelivered(id, payload, nil, func(res backend.Result, back sim.Time) {
					d.Send(ctrl.ID(), back, func() { done(res) })
				})
			})
		},
		nic:      func(name string) *nicsim.NIC { return nics[name].NIC() },
		deviceAt: func(name string, t sim.Time, fn func()) { doms[name].At(t, fn) },
		run:      p.RunUntilIdle,
		executed: p.Executed,
		clock:    p.Clock,
		domains:  1 + len(names),
	}
	return chaosRun(cfg, ch, web, names, topo)
}

// chaosRun is the topology-independent harness: control plane, fault
// timeline, load, and phase bucketing.
func chaosRun(cfg Config, ch ChaosConfig, web *workloads.Workload, names []string, topo *chaosTopology) (*ChaosReport, error) {
	s := topo.ctrl
	collector := obs.NewCollector(func() time.Duration { return s.Now() },
		obs.WithSampleEvery(ch.TraceSampleEvery))

	// Control plane: the real manager over the Raft-backed store, with
	// fleet capacity and per-replica demands sized so DRF places one
	// replica per worker — eviction shrinks both capacity and plan.
	mgr, err := core.NewManager(3, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if _, err := mgr.Register(web); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	perThreads := float64(cfg.Testbed.NIC.NPUThreads())
	const perMemMB = 2000.0
	mgr.SetFleet(core.FleetCapacity{
		Threads:  perThreads * float64(ch.Workers),
		MemoryMB: perMemMB * float64(ch.Workers),
		Workers:  names,
	}, []core.WorkloadDemand{{
		Workload:           web,
		ThreadsPerReplica:  perThreads,
		MemoryMBPerReplica: perMemMB,
	}})

	router := &chaosRouter{
		s:        s,
		route:    topo.route,
		timeout:  ch.AttemptTimeout,
		attempts: ch.Attempts,
	}
	mgr.WatchPlacements(func(p core.Placement) {
		if p.Workload == web.Name {
			router.setWorkers(p.Workers)
		}
	})
	if err := mgr.RecordPlacement(web.Name, names); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}

	rep := &ChaosReport{HeartbeatInterval: ch.HeartbeatInterval}
	end := sim.Time(ch.Duration)

	// The telemetry plane rides the run on the control domain's virtual
	// clock: a rolling window of a few heartbeat intervals, graded
	// against the provider's objectives at every detector check. The
	// sampling piggybacks on the existing check event, so the event
	// count — and with it the Chaos/ChaosParallel differential — is
	// untouched.
	slo, err := telemetry.NewSLOTracker(
		telemetry.NewWindowed(telemetry.WindowConfig{
			Slots:        4,
			SlotDuration: ch.HeartbeatInterval,
		}),
		telemetry.Objective{
			Name: "availability", Kind: telemetry.ObjectiveAvailability,
			Target: chaosAvailabilityTarget,
		},
		telemetry.Objective{
			Name: "p99-latency", Kind: telemetry.ObjectiveLatency,
			Target: chaosLatencyQuantile, Threshold: ch.AttemptTimeout,
		},
	)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	sloMeter := slo.Windowed()
	sloMeter.Stats(0)

	// Heartbeats: each worker publishes into the control store every
	// interval — the virtual-time twin of healthd.Heartbeater. A killed
	// worker falls silent; that silence IS the failure signal.
	killed := make(map[string]bool, ch.Workers)
	for _, name := range names {
		name := name
		var beat func(seq uint64)
		beat = func(seq uint64) {
			if !killed[name] {
				if err := mgr.PutHealth(healthd.Heartbeat{Worker: name, Seq: seq}); err != nil {
					return
				}
			}
			if s.Now() < end {
				s.Schedule(ch.HeartbeatInterval, func() { beat(seq + 1) })
			}
		}
		beat(1)
	}

	// Detection: the manager-side check cycle, scheduled every interval
	// — the virtual-time twin of healthd.Daemon.Poll. A Dead transition
	// evicts the worker, which re-runs DRF placement and flows the
	// shrunk route to the router through the placement watch.
	det := healthd.NewDetector(healthd.Config{
		Interval:     ch.HeartbeatInterval,
		SuspectAfter: ch.SuspectAfter,
		EvictAfter:   ch.EvictAfter,
	})
	var check func()
	var checkEv *sim.Event
	check = func() {
		now := s.Now()
		slo.Sample(now)
		if hbs, err := mgr.HealthSnapshot(); err == nil {
			for _, hb := range hbs {
				if tr := det.Observe(hb, now); tr != nil {
					rep.Transitions = append(rep.Transitions, *tr)
				}
			}
		}
		for _, tr := range det.Check(now) {
			rep.Transitions = append(rep.Transitions, tr)
			if tr.To != healthd.StatusDead {
				continue
			}
			if err := mgr.EvictWorker(tr.Worker); err == nil && rep.EvictedAt == 0 {
				rep.EvictedAt = now
				collector.MarkEvent("faults", "evict:"+tr.Worker, now)
			}
		}
		if now < end {
			// Re-arm the same event instead of allocating a fresh one
			// each cycle (sim.Reschedule's fired-event fast path).
			checkEv = s.Reschedule(checkEv, ch.HeartbeatInterval)
		}
	}
	checkEv = s.Schedule(ch.HeartbeatInterval, check)

	// The scripted fault: the timing-layer timeline crash-stops the
	// victim NIC mid-run. The crash is a black hole — in-flight and
	// future requests vanish without completions, and heartbeats stop.
	victim := names[0]
	rep.Killed = victim
	timeline := &faults.Timeline{Faults: []faults.SimFault{
		{At: sim.Time(ch.KillAt), Kind: faults.FaultNICCrash, Target: victim},
	}}
	// Each fault costs exactly two scheduled events in every topology:
	// the device-side application on the simulation owning the target
	// NIC, and a control-side mirror that suppresses the victim's
	// heartbeats and stamps the report. On a shared clock both land on
	// the same queue; under parallel domains the device half runs in the
	// worker's domain. No cross-domain message is needed at the fault
	// instant — a crash is a silent black hole, so only the heartbeat
	// silence (already control-side) carries the failure signal.
	for _, f := range timeline.Sorted() {
		f := f
		topo.deviceAt(f.Target, f.At, func() {
			switch f.Kind {
			case faults.FaultNICCrash:
				topo.nic(f.Target).Crash()
			case faults.FaultNICRecover:
				topo.nic(f.Target).Recover()
			case faults.FaultDegrade:
				topo.nic(f.Target).SetSlowdown(f.Factor)
			}
		})
		s.At(f.At, func() {
			switch f.Kind {
			case faults.FaultNICCrash:
				killed[f.Target] = true
				rep.KillAt = s.Now()
				collector.MarkEvent("faults", f.Kind.String()+":"+f.Target, s.Now())
			case faults.FaultNICRecover:
				killed[f.Target] = false
			}
		})
	}

	// Open-loop Poisson load over the whole run. Arrival times are
	// drawn up front from the simulation's seeded source, so the
	// schedule — and with it every verdict downstream — is a pure
	// function of the seed.
	var samples []chaosSample
	rng := s.Rand()
	at := sim.Time(0)
	for i := 0; at < end; i++ {
		payload := web.MakeRequest(i)
		s.ScheduleAt(at, func() {
			start := s.Now()
			tr := collector.Begin(web.ID, web.Name)
			router.invoke(web.ID, payload, tr, 0, func(res backend.Result) {
				tr.Finish(s.Now(), res.Err)
				sloMeter.Observe(s.Now()-start, res.Err != nil)
				samples = append(samples, chaosSample{
					start:   start,
					latency: s.Now() - start,
					failed:  res.Err != nil,
				})
			})
		})
		at += sim.Time(rng.ExpFloat64() / ch.RatePerSec * float64(time.Second))
	}

	if err := topo.run(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	rep.Executed = topo.executed()
	rep.FinalClock = topo.clock()
	rep.Domains = topo.domains
	if rep.KillAt == 0 {
		return nil, errors.New("chaos: kill never fired (KillAt past Duration?)")
	}
	if rep.EvictedAt == 0 {
		return nil, fmt.Errorf("chaos: %s was never evicted (detector: %+v)",
			victim, det.Snapshot(s.Now()))
	}
	rep.RecoveryIntervals = float64(rep.EvictedAt-rep.KillAt) / float64(ch.HeartbeatInterval)
	if p, err := mgr.Placement(web.Name); err == nil {
		rep.Survivors = p.Workers
	}
	rep.Failovers = router.failovers
	rep.Requests = collector.Requests()
	rep.Marks = collector.Marks()
	sloReport := slo.Report()
	rep.SLO = &sloReport

	// Phase bucketing by request start time.
	bounds := []struct {
		name       string
		start, end sim.Time
	}{
		{"before", 0, rep.KillAt},
		{"during", rep.KillAt, rep.EvictedAt},
		{"after", rep.EvictedAt, end},
	}
	for _, b := range bounds {
		var lat metrics.Sample
		phase := ChaosPhase{Name: b.name, Start: b.start, End: b.end}
		for _, sm := range samples {
			if sm.start < b.start || sm.start >= b.end {
				continue
			}
			phase.Requests++
			if sm.failed {
				phase.Errors++
			} else {
				lat.AddDuration(sm.latency)
			}
		}
		if phase.Requests > 0 {
			phase.Availability = float64(phase.Requests-phase.Errors) / float64(phase.Requests)
		}
		phase.P50 = time.Duration(lat.P50() * float64(time.Second))
		phase.P99 = time.Duration(lat.P99() * float64(time.Second))
		rep.Phases = append(rep.Phases, phase)
	}
	return rep, nil
}

// RenderChaos prints the chaos report.
func RenderChaos(rep *ChaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: %s crash-stopped at %v, evicted at %v (%.1f heartbeat intervals, %d failovers)\n",
		rep.Killed, rep.KillAt, rep.EvictedAt, rep.RecoveryIntervals, rep.Failovers)
	fmt.Fprintf(&b, "  survivors: %s\n", strings.Join(rep.Survivors, " "))
	fmt.Fprintf(&b, "  %-7s %9s %7s %13s %11s %11s\n",
		"phase", "requests", "errors", "availability", "p50", "p99")
	for _, p := range rep.Phases {
		fmt.Fprintf(&b, "  %-7s %9d %7d %12.2f%% %11v %11v\n",
			p.Name, p.Requests, p.Errors, 100*p.Availability, p.P50, p.P99)
	}
	for _, tr := range rep.Transitions {
		fmt.Fprintf(&b, "  transition: %s %s -> %s at %v\n", tr.Worker, tr.From, tr.To, tr.At)
	}
	if rep.SLO != nil {
		for _, line := range strings.Split(strings.TrimRight(rep.SLO.Text(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
