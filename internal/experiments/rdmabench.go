package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/benchio"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/metrics"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/rdma"
	"lambdanic/internal/sim"
	"lambdanic/internal/trace"
	"lambdanic/internal/workloads"
)

// The rdmabench experiment measures the one-sided RDMA fast path on
// the simulated testbed, in virtual time — every number is a property
// of the timing model, deterministic and machine-independent, which is
// why the committed BENCH_rdma_baseline.json can be guarded tightly.
//
// Three row families, reproducing the SMART-style scalability curves:
//
//   - kvget/lambda/c{C}: the baseline — KV GETs served by invoking the
//     kv_get_client lambda on an NPU plus the modeled memcached store
//     access (StoreRTT + serialized StoreOccupancy), C closed-loop
//     clients.
//   - kvget/bypass/w{W}/c{C}: the same GETs served by one-sided RDMA
//     reads of the EMEM-resident table (no NPU dispatch), through a QP
//     whose outstanding-request window is W. Throughput rises with W
//     until the shared link saturates (the knee), then flattens.
//   - large/doorbell/{size} vs large/perfrag/{size}: a large object
//     moved as MTU-sized writes flushed under ONE doorbell (the whole
//     batch pipelines on the link) versus one doorbell + completion
//     wait per fragment (the stop-and-wait fragmentation path). The
//     gap is the per-doorbell charge plus the lost pipelining.
//
// The whole suite runs under both simulation kernels (ladder and binary
// heap) and RdmaBench fails if the reports differ in any bit that
// matters — same determinism contract as the other experiments.

// RdmaBenchConfig sizes the one-sided RDMA benchmark.
type RdmaBenchConfig struct {
	// Requests is the measured GET count per kvget scenario.
	Requests int
	// Warmup GETs run before measurement opens.
	Warmup int
	// Clients are the closed-loop client counts.
	Clients []int
	// Windows are the QP outstanding-request windows for the bypass
	// scalability curve (0 = unlimited).
	Windows []int
	// LargeOps is the number of MTU-sized writes per large transfer.
	LargeOps int
	// Transfers is how many large transfers each large row measures.
	Transfers int
	// DoorbellCost is the per-doorbell submission charge applied in the
	// large-transfer engines (the quantity batching amortizes).
	DoorbellCost time.Duration
	// StoreRTT and StoreOccupancy model the memcached machine the
	// kv_get_client lambda queries: the round-trip wire time to it and
	// its serialized per-request service time. The simulated backend
	// measures the client lambda alone (Figures 6–7), but a *served*
	// GET on the lambda path additionally pays this store access — the
	// bypass rows pay theirs as the one-sided read itself, so only the
	// lambda baseline is wrapped with this stage.
	StoreRTT       time.Duration
	StoreOccupancy time.Duration
}

// DefaultRdmaBench returns the full-size configuration.
func DefaultRdmaBench() RdmaBenchConfig {
	return RdmaBenchConfig{
		Requests:       2000,
		Warmup:         200,
		Clients:        []int{1, 4, 16},
		Windows:        []int{1, 2, 4, 8, 16, 32},
		LargeOps:       64,
		Transfers:      32,
		DoorbellCost:   time.Microsecond,
		StoreRTT:       3 * time.Microsecond,
		StoreOccupancy: 1500 * time.Nanosecond,
	}
}

// QuickRdmaBench returns a reduced configuration for smoke runs and CI.
func QuickRdmaBench() RdmaBenchConfig {
	return RdmaBenchConfig{
		Requests:       400,
		Warmup:         40,
		Clients:        []int{1, 4, 16},
		Windows:        []int{1, 2, 4, 8, 16},
		LargeOps:       32,
		Transfers:      8,
		DoorbellCost:   time.Microsecond,
		StoreRTT:       3 * time.Microsecond,
		StoreOccupancy: 1500 * time.Nanosecond,
	}
}

// rdmaBenchTable builds the EMEM table mirror preloaded with the KV
// keyspace and returns the key indices that fit its fixed-slot
// geometry — the bypass rows request only present keys, so every GET
// is a one-sided hit and the rows measure the fast path, not the
// fallback mix.
func rdmaBenchTable() (*kvstore.Table, []int) {
	table := kvstore.NewTable(2048)
	var present []int
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user:%04d", i)
		if table.Set(key, []byte(fmt.Sprintf("value-%d", i))) {
			present = append(present, i)
		}
	}
	return table, present
}

// runKVGetRow drives one closed-loop GET scenario. window < 0 disables
// the bypass entirely (the lambda baseline).
func runKVGetRow(cfg Config, rb RdmaBenchConfig, name string, clients, window int) (benchio.Result, error) {
	s := sim.NewWithKernel(cfg.Seed, cfg.Kernel)
	b, err := backend.NewLambdaNIC(s, cfg.Testbed, nicsim.DispatchUniform)
	if err != nil {
		return benchio.Result{}, err
	}
	get := workloads.KVGetClient()
	if err := b.Deploy([]*workloads.Workload{get}); err != nil {
		return benchio.Result{}, err
	}
	table, present := rdmaBenchTable()
	var target trace.Invoker = b
	if window >= 0 {
		if err := b.EnableKVBypass(get.ID, table, window); err != nil {
			return benchio.Result{}, err
		}
	} else {
		// Lambda baseline: the served GET pays the memcached machine
		// round trip and its serialized service time on top of the
		// client lambda (the bypass rows pay theirs as the RDMA read).
		target = trace.NewGateway(s, b, rb.StoreRTT, rb.StoreOccupancy)
	}
	res, err := (trace.ClosedLoop{
		Concurrency: clients,
		Requests:    rb.Requests,
		Warmup:      rb.Warmup,
		Gen: trace.Fixed(get.ID, func(i int) []byte {
			return get.MakeRequest(present[i%len(present)])
		}),
	}).Run(s, target)
	if err != nil {
		return benchio.Result{}, err
	}
	if res.Errors > 0 {
		return benchio.Result{}, fmt.Errorf("rdmabench: %s: %d errors", name, res.Errors)
	}
	if window >= 0 {
		hits, fallbacks := b.BypassStats()
		if fallbacks > 0 || hits == 0 {
			return benchio.Result{}, fmt.Errorf("rdmabench: %s: bypass hits=%d fallbacks=%d, want all hits",
				name, hits, fallbacks)
		}
	}
	return traceRow(name, clients, res), nil
}

// traceRow converts a virtual-clock load result to the benchmark row
// schema. ReqPerSec is completions per second of simulated time.
func traceRow(name string, clients int, res *trace.Result) benchio.Result {
	return benchio.Result{
		Name:        name,
		Transport:   "nicsim",
		Mode:        "closed",
		Concurrency: clients,
		Requests:    int(res.Throughput.Completed),
		Errors:      res.Errors,
		ReqPerSec:   res.Throughput.PerSecond(),
		P50Ns:       int64(res.Latency.Quantile(0.50) * 1e9),
		P90Ns:       int64(res.Latency.Quantile(0.90) * 1e9),
		P99Ns:       int64(res.Latency.Quantile(0.99) * 1e9),
	}
}

// runLargeRow measures rb.Transfers large-object transfers, each
// rb.LargeOps MTU-sized writes. Batched mode posts the whole transfer
// and rings once; per-fragment mode rings and waits per write — the
// stop-and-wait discipline of the fragmentation path it stands in for.
func runLargeRow(cfg Config, rb RdmaBenchConfig, name string, batched bool) (benchio.Result, error) {
	s := sim.NewWithKernel(cfg.Seed, cfg.Kernel)
	eng := rdma.New(s, rdma.Config{
		Link:         cfg.Testbed.Link,
		PerPacketDMA: 100 * time.Nanosecond,
		MTU:          workloads.MTU,
		DoorbellCost: sim.Time(rb.DoorbellCost),
	})
	size := rb.LargeOps * workloads.MTU
	region, err := eng.Register("large-object", size)
	if err != nil {
		return benchio.Result{}, err
	}
	qp := eng.NewQP(0)
	chunk := make([]byte, workloads.MTU)
	var lat metrics.Sample
	var firstErr error
	start := s.Now()
	for t := 0; t < rb.Transfers; t++ {
		t0 := s.Now()
		onDone := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if batched {
			for op := 0; op < rb.LargeOps; op++ {
				qp.PostWrite(region.Key(), op*workloads.MTU, chunk, onDone)
			}
			qp.RingDoorbell()
			if err := s.RunUntilIdle(); err != nil {
				return benchio.Result{}, err
			}
		} else {
			for op := 0; op < rb.LargeOps; op++ {
				qp.PostWrite(region.Key(), op*workloads.MTU, chunk, onDone)
				qp.RingDoorbell()
				if err := s.RunUntilIdle(); err != nil {
					return benchio.Result{}, err
				}
			}
		}
		if firstErr != nil {
			return benchio.Result{}, fmt.Errorf("rdmabench: %s: %w", name, firstErr)
		}
		lat.AddDuration(s.Now() - t0)
	}
	elapsed := (s.Now() - start).Seconds()
	row := benchio.Result{
		Name:        name,
		Transport:   "nicsim",
		Mode:        "closed",
		Concurrency: 1,
		Requests:    rb.Transfers,
		P50Ns:       int64(lat.Quantile(0.50) * 1e9),
		P90Ns:       int64(lat.Quantile(0.90) * 1e9),
		P99Ns:       int64(lat.Quantile(0.99) * 1e9),
	}
	if elapsed > 0 {
		row.ReqPerSec = float64(rb.Transfers) / elapsed
	}
	return row, nil
}

// runRdmaSuite produces the full report under one kernel.
func runRdmaSuite(cfg Config, rb RdmaBenchConfig, kind sim.KernelKind) (benchio.Report, error) {
	cfg.Kernel = kind
	var results []benchio.Result
	for _, c := range rb.Clients {
		row, err := runKVGetRow(cfg, rb, fmt.Sprintf("kvget/lambda/c%d", c), c, -1)
		if err != nil {
			return benchio.Report{}, err
		}
		results = append(results, row)
	}
	for _, w := range rb.Windows {
		for _, c := range rb.Clients {
			row, err := runKVGetRow(cfg, rb, fmt.Sprintf("kvget/bypass/w%d/c%d", w, c), c, w)
			if err != nil {
				return benchio.Report{}, err
			}
			results = append(results, row)
		}
	}
	sizeKiB := rb.LargeOps * workloads.MTU / 1024
	for _, mode := range []struct {
		name    string
		batched bool
	}{
		{fmt.Sprintf("large/doorbell/%dKiB", sizeKiB), true},
		{fmt.Sprintf("large/perfrag/%dKiB", sizeKiB), false},
	} {
		row, err := runLargeRow(cfg, rb, mode.name, mode.batched)
		if err != nil {
			return benchio.Report{}, err
		}
		results = append(results, row)
	}
	return benchio.Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
	}, nil
}

// RdmaBench runs the suite under the ladder and heap kernels, fails if
// the two reports differ (the determinism contract every experiment in
// this repo carries), and returns the report written to
// BENCH_rdma.json.
func RdmaBench(cfg Config, rb RdmaBenchConfig) (benchio.Report, error) {
	ladder, err := runRdmaSuite(cfg, rb, sim.KernelLadder)
	if err != nil {
		return benchio.Report{}, err
	}
	heap, err := runRdmaSuite(cfg, rb, sim.KernelHeap)
	if err != nil {
		return benchio.Report{}, err
	}
	if err := sameRdmaResults(ladder.Results, heap.Results); err != nil {
		return benchio.Report{}, fmt.Errorf("rdmabench: ladder/heap kernels diverged: %w", err)
	}
	return ladder, nil
}

// sameRdmaResults checks bit-identity of the measured quantities across
// the two kernel runs.
func sameRdmaResults(a, b []benchio.Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d rows", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Name != y.Name || x.Requests != y.Requests || x.Errors != y.Errors ||
			x.ReqPerSec != y.ReqPerSec || x.P50Ns != y.P50Ns || x.P90Ns != y.P90Ns || x.P99Ns != y.P99Ns {
			return fmt.Errorf("row %s: ladder %+v, heap %+v", x.Name, x, y)
		}
	}
	return nil
}

// RenderRdmaBench prints the report: the bypass-vs-lambda headline, the
// throughput-vs-window curve per client count, and the doorbell
// amortization ratio.
func RenderRdmaBench(rep benchio.Report) string {
	var b strings.Builder
	byName := make(map[string]benchio.Result, len(rep.Results))
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	fmt.Fprintf(&b, "One-sided RDMA fast path (virtual time)\n")
	fmt.Fprintf(&b, "  %-24s %8s %12s %10s %10s\n", "scenario", "requests", "req/s", "p50", "p99")
	for _, r := range rep.Results {
		fmt.Fprintf(&b, "  %-24s %8d %12.0f %10v %10v\n",
			r.Name, r.Requests, r.ReqPerSec,
			time.Duration(r.P50Ns), time.Duration(r.P99Ns))
	}
	// Headline: best bypass row vs the lambda baseline at the same
	// client count.
	for _, r := range rep.Results {
		var c int
		if _, err := fmt.Sscanf(r.Name, "kvget/lambda/c%d", &c); err != nil {
			continue
		}
		best := math.Inf(-1)
		for _, s := range rep.Results {
			var w, sc int
			if _, err := fmt.Sscanf(s.Name, "kvget/bypass/w%d/c%d", &w, &sc); err == nil && sc == c {
				if s.ReqPerSec > best {
					best = s.ReqPerSec
				}
			}
		}
		if best > 0 && r.ReqPerSec > 0 {
			fmt.Fprintf(&b, "  c=%d bypass speedup over lambda path: %.2fx\n", c, best/r.ReqPerSec)
		}
	}
	if db, ok1 := firstWithPrefix(rep.Results, "large/doorbell/"); ok1 {
		if pf, ok2 := firstWithPrefix(rep.Results, "large/perfrag/"); ok2 && pf.ReqPerSec > 0 {
			fmt.Fprintf(&b, "  doorbell batching speedup over per-fragment: %.2fx\n",
				db.ReqPerSec/pf.ReqPerSec)
		}
	}
	return b.String()
}

func firstWithPrefix(results []benchio.Result, prefix string) (benchio.Result, bool) {
	for _, r := range results {
		if strings.HasPrefix(r.Name, prefix) {
			return r, true
		}
	}
	return benchio.Result{}, false
}
