package experiments

import (
	"fmt"
	"strings"

	"lambdanic/internal/obs"
	"lambdanic/internal/trace"
	"lambdanic/internal/workloads"
)

// BreakdownReport is the latency-attribution companion to Figures 6
// and 8: per workload, where λ-NIC requests spend their time — queue
// wait, instruction cycles, per-level memory stalls, and transport —
// so the end-to-end gap the paper reports is explainable stage by
// stage (§4.2.1, §6.3).
type BreakdownReport struct {
	// Workloads holds one attribution table per benchmark workload.
	Workloads []obs.WorkloadBreakdown
	// Requests are the raw traced requests, exportable as a Chrome
	// trace (WriteChromeTrace) for timeline inspection.
	Requests []*obs.Req
}

// LatencyBreakdown runs each benchmark workload closed-loop on the
// λ-NIC backend with tracing enabled and attributes every request's
// time to pipeline stages. The workloads share one simulation, run
// back to back, so the exported Chrome trace shows them on one
// non-overlapping timeline.
func LatencyBreakdown(cfg Config) (*BreakdownReport, error) {
	type wl struct {
		name string
		id   uint32
		gen  func(i int) []byte
	}
	img := workloads.ImageTransformer(cfg.ImageWidth, cfg.ImageHeight)
	wls := []wl{
		{"web-server", workloads.WebServerID, workloads.WebServer().MakeRequest},
		{"key-value-client", workloads.KVGetClientID, workloads.KVGetClient().MakeRequest},
		{"image-transformer", workloads.ImageTransformerID, img.MakeRequest},
	}
	s, b, err := cfg.newBackend(BackendLambdaNIC, cfg.set())
	if err != nil {
		return nil, err
	}
	col := obs.NewCollector(s.Now)
	for _, w := range wls {
		samples := cfg.Fig6Samples
		if w.name == "image-transformer" && samples > cfg.Fig7ImageRequests*4 {
			samples = cfg.Fig7ImageRequests * 4
		}
		_, err := trace.ClosedLoop{
			Concurrency: 1,
			Requests:    samples,
			Warmup:      cfg.Warmup,
			Gen:         trace.Labeled(w.id, w.name, w.gen),
			Tracer:      col,
		}.Run(s, b)
		if err != nil {
			return nil, fmt.Errorf("breakdown %s: %w", w.name, err)
		}
	}
	reqs := col.Requests()
	return &BreakdownReport{
		Workloads: obs.Summarize(reqs),
		Requests:  reqs,
	}, nil
}

// RenderLatencyBreakdown prints the attribution report.
func RenderLatencyBreakdown(r *BreakdownReport) string {
	var b strings.Builder
	b.WriteString("Latency breakdown: per-stage attribution on the λ-NIC backend (closed loop)\n")
	b.WriteString(obs.RenderBreakdown(r.Workloads))
	return b.String()
}
