package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/sim"
)

func tenantsQuickConfig(kernel sim.KernelKind) (Config, TenantsConfig) {
	cfg := Quick()
	cfg.Kernel = kernel
	return cfg, QuickTenants()
}

func TestTenantsIsolationQuick(t *testing.T) {
	cfg, tc := tenantsQuickConfig(sim.KernelLadder)
	rep, err := Tenants(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Isolated {
		t.Fatalf("isolation violated:\n%s", RenderTenants(rep))
	}
	if rep.DuringP99 <= 0 || rep.DuringP99 > tc.IsolationP99 {
		t.Errorf("interactive p99 during burst = %v, want (0, %v]", rep.DuringP99, tc.IsolationP99)
	}
	if rep.FinalBurn != 0 {
		t.Errorf("final burn = %v, want 0 after the burst clears", rep.FinalBurn)
	}
	if rep.Shed == 0 {
		t.Error("admission shed nothing — burst did not exceed the batch quota")
	}
	if rep.BatchCompleted == 0 || rep.InteractiveCompleted == 0 {
		t.Errorf("NIC completions vip=%d bulk=%d, want both > 0",
			rep.InteractiveCompleted, rep.BatchCompleted)
	}

	// The harness's own bookkeeping must agree with the NIC schedulers.
	var vipReqs, bulkReqs, shed int
	for _, p := range rep.Phases {
		shed += p.Shed
		switch p.Tenant {
		case "vip":
			vipReqs += p.Requests
		case "bulk":
			bulkReqs += p.Requests
		}
	}
	if uint64(vipReqs) != rep.InteractiveCompleted {
		t.Errorf("vip: %d admitted vs %d completed on NICs", vipReqs, rep.InteractiveCompleted)
	}
	if uint64(bulkReqs) != rep.BatchCompleted {
		t.Errorf("bulk: %d admitted vs %d completed on NICs", bulkReqs, rep.BatchCompleted)
	}
	if uint64(shed) != rep.Shed {
		t.Errorf("phase shed sum %d vs admission total %d", shed, rep.Shed)
	}

	// Sheds land in the burst window only; the batch tenant completes
	// real work despite the flood.
	for _, p := range rep.Phases {
		if p.Phase != "during" && p.Shed != 0 {
			t.Errorf("%s/%s shed %d requests outside the burst", p.Tenant, p.Phase, p.Shed)
		}
	}

	out := RenderTenants(rep)
	for _, want := range []string{"vip", "bulk", "during", "bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	bench := rep.Bench()
	if len(bench.Results) != 6 {
		t.Fatalf("bench rows = %d, want 6 (2 tenants × 3 phases)", len(bench.Results))
	}
	for _, r := range bench.Results {
		if !strings.Contains(r.Name, "/") {
			t.Errorf("bench row name %q, want tenant/phase", r.Name)
		}
	}
}

// tenantsFingerprint is every report field that must be bit-identical
// across kernels and across the serial/parallel topologies.
type tenantsFingerprint struct {
	Phases               []TenantPhaseStat
	Shed                 uint64
	Interactive, Batch   uint64
	DuringP99            time.Duration
	WorstBurn, FinalBurn float64
	Executed             uint64
	FinalClock           time.Duration
}

func tenantsPrint(rep *TenantsReport) tenantsFingerprint {
	return tenantsFingerprint{
		Phases:      rep.Phases,
		Shed:        rep.Shed,
		Interactive: rep.InteractiveCompleted,
		Batch:       rep.BatchCompleted,
		DuringP99:   rep.DuringP99,
		WorstBurn:   rep.WorstBurn,
		FinalBurn:   rep.FinalBurn,
		Executed:    rep.Executed,
		FinalClock:  rep.FinalClock,
	}
}

func TestTenantsSerialParallelIdentical(t *testing.T) {
	cfg, tc := tenantsQuickConfig(sim.KernelLadder)
	serial, err := Tenants(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TenantsParallel(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Domains != tc.Workers+1 {
		t.Errorf("parallel domains = %d, want %d", parallel.Domains, tc.Workers+1)
	}
	if a, b := tenantsPrint(serial), tenantsPrint(parallel); !reflect.DeepEqual(a, b) {
		t.Errorf("serial and parallel runs diverged:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

func TestTenantsKernelsIdentical(t *testing.T) {
	cfgHeap, tc := tenantsQuickConfig(sim.KernelHeap)
	heap, err := Tenants(cfgHeap, tc)
	if err != nil {
		t.Fatal(err)
	}
	cfgLadder, _ := tenantsQuickConfig(sim.KernelLadder)
	ladder, err := Tenants(cfgLadder, tc)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := tenantsPrint(heap), tenantsPrint(ladder); !reflect.DeepEqual(a, b) {
		t.Errorf("heap and ladder kernels diverged:\nheap:   %+v\nladder: %+v", a, b)
	}
}
