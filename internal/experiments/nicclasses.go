package experiments

import (
	"fmt"
	"strings"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/cluster"
	"lambdanic/internal/cpusim"
	"lambdanic/internal/metrics"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/trace"
	"lambdanic/internal/workloads"
)

// NICClassResult quantifies Table 1 for one SmartNIC class running the
// Match+Lambda machine model (§7: "the λ-NIC abstract machine model can
// run on other SmartNICs (with varying benefits)").
type NICClassResult struct {
	Class string
	// WebLatency is the warm web-server service latency.
	WebLatency metrics.Summary
	// WebThroughput is the 112-way concurrent web throughput (direct,
	// no gateway; the NIC itself is the bottleneck under study).
	WebThroughput float64
}

// fpgaNIC models an FPGA-based SmartNIC: on-chip interconnect overhead
// limits it to a handful of processing cores (§2.2: "today's large
// FPGAs can barely support a small number of processing cores (< 10 or
// so)"), clocked lower than the ASIC but with fast on-chip memories.
func fpgaNIC(tb cluster.Testbed) cluster.NICConfig {
	nic := tb.NIC
	nic.Islands = 1
	nic.CoresPerIsland = 8
	nic.ThreadsPerCore = 1
	nic.ClockHz = 250_000_000
	nic.LocalLatency = 1
	nic.CTMLatency = 20 // BRAM
	nic.IMEMLatency = 60
	nic.EMEMLatency = 400
	return nic
}

// socCosts models a SoC-based SmartNIC: ~50 embedded ARM cores running
// a Linux-like OS (§2.2), so every request pays a kernel network stack
// and scheduler dispatch — "similar to server CPUs, they are
// susceptible to high tail latency due to context switch and network
// stack overheads".
func socCosts() (cluster.HostConfig, cluster.SoftwareCosts) {
	host := cluster.HostConfig{
		PhysicalCores:  48,
		ThreadsPerCore: 1,
		ClockHz:        1_200_000_000,
		MemoryBytes:    8 << 30,
	}
	costs := cluster.SoftwareCosts{
		KernelRx:          15 * time.Microsecond,
		KernelTx:          10 * time.Microsecond,
		DispatchWarm:      8 * time.Microsecond,
		DispatchLoaded:    20 * time.Microsecond,
		ContextSwitch:     25 * time.Microsecond,
		InterpreterFactor: 1.5, // native ARM runtime, no Python
	}
	return host, costs
}

// SmartNICClasses runs the web-server lambda on all three SmartNIC
// classes of Table 1 and reports latency and saturated throughput. The
// qualitative table's claims become measurements: ASIC and FPGA are
// both low-latency but the FPGA's few cores cap its throughput; the SoC
// has cores to spare but its OS path puts it an order of magnitude
// behind on latency.
func SmartNICClasses(cfg Config) ([]NICClassResult, error) {
	web := workloads.WebServer()
	requests := cfg.Fig7Requests
	concurrency := 2 * cfg.Concurrency

	measure := func(mk func(s *sim.Sim) (trace.Invoker, error)) (metrics.Summary, float64, error) {
		// Latency: closed loop, one outstanding.
		s := cfg.newSim()
		inv, err := mk(s)
		if err != nil {
			return metrics.Summary{}, 0, err
		}
		lat, err := trace.ClosedLoop{
			Concurrency: 1, Requests: cfg.Fig6Samples, Warmup: cfg.Warmup,
			Gen: trace.Fixed(web.ID, web.MakeRequest),
		}.Run(s, inv)
		if err != nil {
			return metrics.Summary{}, 0, err
		}
		// Throughput: saturating concurrency.
		s2 := cfg.newSim()
		inv2, err := mk(s2)
		if err != nil {
			return metrics.Summary{}, 0, err
		}
		tput, err := trace.ClosedLoop{
			Concurrency: concurrency, Requests: requests, Warmup: cfg.Warmup,
			Gen: trace.Fixed(web.ID, web.MakeRequest),
		}.Run(s2, inv2)
		if err != nil {
			return metrics.Summary{}, 0, err
		}
		return lat.Latency.Summarize(), tput.Throughput.PerSecond(), nil
	}

	nicBackend := func(nic cluster.NICConfig) func(s *sim.Sim) (trace.Invoker, error) {
		return func(s *sim.Sim) (trace.Invoker, error) {
			tb := cfg.Testbed
			tb.NIC = nic
			b, err := backend.NewLambdaNIC(s, tb, nicsim.DispatchUniform)
			if err != nil {
				return nil, err
			}
			if err := b.Deploy(cfg.set()); err != nil {
				return nil, err
			}
			return b, nil
		}
	}
	socBackend := func(s *sim.Sim) (trace.Invoker, error) {
		host, costs := socCosts()
		h, err := cpusim.New(s, cpusim.Config{Host: host, Costs: costs, Mode: cpusim.ModeBareMetal})
		if err != nil {
			return nil, err
		}
		for _, w := range cfg.set() {
			// Native embedded runtime: execution parallelizes across
			// the ARM cores.
			p := w.Profile
			p.GILFraction = 0
			if err := h.Deploy(p); err != nil {
				return nil, err
			}
		}
		return &socInvoker{s: s, h: h, tb: cfg.Testbed}, nil
	}

	classes := []struct {
		name string
		mk   func(s *sim.Sim) (trace.Invoker, error)
	}{
		{"ASIC-based", nicBackend(cfg.Testbed.NIC)},
		{"FPGA-based", nicBackend(fpgaNIC(cfg.Testbed))},
		{"SoC-based", socBackend},
	}
	var out []NICClassResult
	for _, c := range classes {
		lat, tput, err := measure(c.mk)
		if err != nil {
			return nil, fmt.Errorf("nic class %s: %w", c.name, err)
		}
		out = append(out, NICClassResult{Class: c.name, WebLatency: lat, WebThroughput: tput})
	}
	return out, nil
}

// socInvoker adapts the cpusim host (without container/python layers)
// as an invoker with wire latency, standing in for an SoC NIC's
// embedded cores.
type socInvoker struct {
	s  *sim.Sim
	h  *cpusim.Host
	tb cluster.Testbed
}

func (si *socInvoker) Invoke(id uint32, payload []byte, done func(backend.Result)) {
	si.s.Schedule(si.tb.Link.OneWay(len(payload)), func() {
		si.h.Submit(id, len(payload), workloads.Packets(len(payload)), func(err error) {
			si.s.Schedule(si.tb.Link.OneWay(256), func() {
				done(backend.Result{Err: err})
			})
		})
	})
}

// RenderNICClasses prints the quantified Table 1.
func RenderNICClasses(results []NICClassResult) string {
	var b strings.Builder
	b.WriteString("SmartNIC classes running Match+Lambda (Table 1, quantified; §7)\n")
	fmt.Fprintf(&b, "  %-12s %14s %14s %16s\n", "Class", "web p50", "web p99", "throughput")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-12s %14s %14s %13.0f req/s\n",
			r.Class, metrics.FormatSeconds(r.WebLatency.P50),
			metrics.FormatSeconds(r.WebLatency.P99), r.WebThroughput)
	}
	return b.String()
}
