package experiments

import (
	"fmt"
	"strings"

	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/workloads"
)

// OptimizerImpact quantifies §6.4's closing claim: the optimizations
// "improv[e] latency by 6.3 µs (on average) or let additional lambdas
// fit within the program-size constraints of the Netronome SmartNIC".
type OptimizerImpact struct {
	// LatencySavedSeconds is the per-request latency the optimized
	// image saves over the naive one, averaged over the interactive
	// workloads.
	LatencySavedSeconds float64
	// NaiveFit and OptimizedFit are how many additional web-server
	// lambda variants fit in the 16 K instruction store alongside the
	// benchmark set, before and after optimization.
	NaiveFit, OptimizedFit int
}

// MeasureOptimizerImpact runs both halves of the claim.
func MeasureOptimizerImpact(cfg Config) (*OptimizerImpact, error) {
	set := cfg.set()
	naive, err := workloads.BuildNaiveProgram(set, workloads.NaiveProgramTarget)
	if err != nil {
		return nil, err
	}
	opt, _, err := mcc.Optimize(naive, mcc.AllPasses())
	if err != nil {
		return nil, err
	}

	// Latency saved: execute the interactive workloads warm on both
	// images and compare NIC service time.
	service := func(p *mcc.Program) (float64, error) {
		exe, err := mcc.Link(p, mcc.LinkOptions{})
		if err != nil {
			return 0, err
		}
		total := 0.0
		ws := []*workloads.Workload{workloads.WebServer(), workloads.KVGetClient(), workloads.KVSetClient()}
		for _, w := range ws {
			req := &nicsim.Request{LambdaID: w.ID, Payload: w.MakeRequest(1), Packets: 1}
			if _, err := exe.Execute(req); err != nil { // warm
				return 0, err
			}
			resp, err := exe.Execute(req)
			if err != nil {
				return 0, err
			}
			cycles := resp.Stats.Cycles(cfg.Testbed.NIC)
			total += sim.CyclesToDuration(cycles, cfg.Testbed.NIC.ClockHz).Seconds()
		}
		return total / float64(len(ws)), nil
	}
	naiveLat, err := service(naive)
	if err != nil {
		return nil, err
	}
	optLat, err := service(opt)
	if err != nil {
		return nil, err
	}

	naiveFit, err := marginalFit(cfg, set, false)
	if err != nil {
		return nil, err
	}
	optFit, err := marginalFit(cfg, set, true)
	if err != nil {
		return nil, err
	}
	return &OptimizerImpact{
		LatencySavedSeconds: naiveLat - optLat,
		NaiveFit:            naiveFit,
		OptimizedFit:        optFit,
	}, nil
}

// marginalFit counts how many extra web-server lambdas fit beside the
// padded benchmark image in the 16 K instruction store. Each extra
// lambda adds its true naive cost on top of the paper-scale 8,902-
// instruction base.
func marginalFit(cfg Config, set []*workloads.Workload, optimize bool) (int, error) {
	build := func(extra int) (int, error) {
		ws := append([]*workloads.Workload{}, set...)
		for i := 0; i < extra; i++ {
			ws = append(ws, workloads.WebServerVariant(fmt.Sprintf("web_extra_%d", i), uint32(100+i)))
		}
		target := workloads.NaiveProgramTarget + marginalNaiveCost(ws, set)
		p, err := workloads.BuildNaiveProgram(ws, target)
		if err != nil {
			return 0, err
		}
		if optimize {
			p, _, err = mcc.Optimize(p, mcc.AllPasses())
			if err != nil {
				return 0, err
			}
		}
		return p.StaticInstructions(), nil
	}
	for extra := 0; extra <= 64; extra++ {
		size, err := build(extra + 1)
		if err != nil {
			return 0, err
		}
		if size > cfg.Testbed.NIC.InstrStorePerCore {
			return extra, nil
		}
	}
	return 64, nil
}

// marginalNaiveCost is the naive code size the extra lambdas bring:
// their entries, their private helpers, and their route tables.
func marginalNaiveCost(ws, base []*workloads.Workload) int {
	extra := 0
	for _, w := range ws[len(base):] {
		extra += w.Spec.Entry.Size()
		for _, h := range w.Spec.Helpers {
			extra += h.Size()
		}
		// Each naive lambda also brings a route table with its lookup
		// machinery (~30 instructions).
		extra += 30
	}
	return extra
}

// RenderOptimizerImpact prints the §6.4 claim measurements.
func RenderOptimizerImpact(r *OptimizerImpact) string {
	var b strings.Builder
	b.WriteString("Optimizer impact (§6.4 closing claim)\n")
	fmt.Fprintf(&b, "  latency saved per interactive request: %.2f µs (paper: 6.3 µs)\n",
		r.LatencySavedSeconds*1e6)
	fmt.Fprintf(&b, "  extra web lambdas fitting the 16K store: naive %d, optimized %d\n",
		r.NaiveFit, r.OptimizedFit)
	return b.String()
}
