// Package experiments regenerates every table and figure of the
// paper's evaluation (§6) on the simulated testbed:
//
//	Table 1  — SmartNIC architecture comparison (static).
//	Figure 6 — latency ECDFs, single warm lambda in isolation.
//	Figure 7 — average throughput, 1 and 56 concurrent requests.
//	Figure 8 — latency CDF under contention (3 web lambdas).
//	Table 2  — throughput under contention.
//	Table 3  — added resource utilization (image transformer).
//	Table 4  — artifact sizes and startup times.
//	Figure 9 — optimizer effectiveness (instruction counts).
//
// Each experiment builds fresh simulations and backends so runs are
// independent and deterministic. The same generators back the
// bench_test.go targets and the cmd/lnic-bench binary.
package experiments

import (
	"fmt"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/cluster"
	"lambdanic/internal/metrics"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/trace"
	"lambdanic/internal/workloads"
)

// BackendID names one evaluated backend.
type BackendID string

// Evaluated backends.
const (
	BackendLambdaNIC      BackendID = "lambda-nic"
	BackendBareMetal      BackendID = "bare-metal"
	BackendBareMetal1Core BackendID = "bare-metal-1core"
	BackendContainer      BackendID = "container"
)

// Config sizes the experiments.
type Config struct {
	Seed    int64
	Testbed cluster.Testbed
	// Kernel selects the sim event-queue implementation. Both kernels
	// fire in the identical order, so results are bit-identical; the
	// zero value is the (faster) ladder queue.
	Kernel sim.KernelKind
	// Image dimensions for the image-transformer workload.
	ImageWidth, ImageHeight int
	// Concurrency is the parallel test's outstanding-request count
	// (56 in the paper: the host's hardware threads).
	Concurrency int
	// Samples / request counts per experiment.
	Fig6Samples       int
	Fig7Requests      int
	Fig7ImageRequests int
	Fig8Requests      int
	Table3Requests    int
	// Warmup requests excluded from measurement.
	Warmup int
}

// Default returns full-size experiments (paper-scale sampling).
func Default() Config {
	return Config{
		Seed:              42,
		Testbed:           cluster.Default(),
		ImageWidth:        workloads.DefaultImageWidth,
		ImageHeight:       workloads.DefaultImageHeight,
		Concurrency:       56,
		Fig6Samples:       400,
		Fig7Requests:      3000,
		Fig7ImageRequests: 60,
		Fig8Requests:      3000,
		Table3Requests:    112,
		Warmup:            4,
	}
}

// Quick returns a reduced configuration for tests.
func Quick() Config {
	cfg := Default()
	cfg.ImageWidth, cfg.ImageHeight = 64, 64
	cfg.Fig6Samples = 40
	cfg.Fig7Requests = 300
	cfg.Fig7ImageRequests = 10
	cfg.Fig8Requests = 400
	cfg.Table3Requests = 30
	return cfg
}

// set returns the benchmark workload set sized by the config.
func (c Config) set() []*workloads.Workload {
	return []*workloads.Workload{
		workloads.WebServer(),
		workloads.KVGetClient(),
		workloads.KVSetClient(),
		workloads.ImageTransformer(c.ImageWidth, c.ImageHeight),
	}
}

// newSim builds a simulation honoring the config's kernel selection.
func (c Config) newSim() *sim.Sim {
	return sim.NewWithKernel(c.Seed, c.Kernel)
}

// newBackend builds a fresh simulation plus backend and deploys ws.
func (c Config) newBackend(id BackendID, ws []*workloads.Workload) (*sim.Sim, backend.Backend, error) {
	s := c.newSim()
	b, err := c.newBackendOn(s, id, ws)
	if err != nil {
		return nil, nil, err
	}
	return s, b, nil
}

// newBackendOn builds and deploys a backend on an existing simulation —
// the entry point parallel experiments use to place a backend inside a
// sim.Parallel domain.
func (c Config) newBackendOn(s *sim.Sim, id BackendID, ws []*workloads.Workload) (backend.Backend, error) {
	var (
		b   backend.Backend
		err error
	)
	switch id {
	case BackendLambdaNIC:
		b, err = backend.NewLambdaNIC(s, c.Testbed, nicsim.DispatchUniform)
	case BackendBareMetal:
		b, err = backend.NewBareMetal(s, c.Testbed, false)
	case BackendBareMetal1Core:
		b, err = backend.NewBareMetal(s, c.Testbed, true)
	case BackendContainer:
		b, err = backend.NewContainer(s, c.Testbed)
	default:
		return nil, fmt.Errorf("experiments: unknown backend %q", id)
	}
	if err != nil {
		return nil, err
	}
	if err := b.Deploy(ws); err != nil {
		return nil, err
	}
	return b, nil
}

// gateway wraps a backend with the modeled gateway stage used in the
// throughput experiments.
func (c Config) gateway(s *sim.Sim, b trace.Invoker) *trace.Gateway {
	return trace.NewGateway(s, b, c.Testbed.Costs.GatewayLatency, c.Testbed.Costs.GatewayOccupancy)
}

// LatencySeries is one backend × workload latency distribution.
type LatencySeries struct {
	Workload string
	Backend  BackendID
	Summary  metrics.Summary
	ECDF     []metrics.Point
	Errors   int
}

// Figure6 measures the latency ECDF of each workload on each backend,
// one warm lambda in isolation, closed loop (§6.3.1 and Fig. 6). The
// key-value series reports the client lambda's processing latency,
// excluding the external memcached round trip on every backend (the
// paper's sub-microsecond kv numbers imply the same).
func Figure6(cfg Config) ([]LatencySeries, error) {
	type wl struct {
		name string
		id   uint32
		gen  func(i int) []byte
	}
	img := workloads.ImageTransformer(cfg.ImageWidth, cfg.ImageHeight)
	wls := []wl{
		{"web-server", workloads.WebServerID, workloads.WebServer().MakeRequest},
		{"key-value-client", workloads.KVGetClientID, workloads.KVGetClient().MakeRequest},
		{"image-transformer", workloads.ImageTransformerID, img.MakeRequest},
	}
	backends := []BackendID{BackendLambdaNIC, BackendBareMetal, BackendContainer}
	var out []LatencySeries
	for _, w := range wls {
		samples := cfg.Fig6Samples
		if w.name == "image-transformer" && samples > cfg.Fig7ImageRequests*4 {
			samples = cfg.Fig7ImageRequests * 4
		}
		for _, bid := range backends {
			s, b, err := cfg.newBackend(bid, cfg.set())
			if err != nil {
				return nil, err
			}
			res, err := trace.ClosedLoop{
				Concurrency: 1,
				Requests:    samples,
				Warmup:      cfg.Warmup,
				Gen:         trace.Fixed(w.id, w.gen),
			}.Run(s, b)
			if err != nil {
				return nil, fmt.Errorf("figure6 %s/%s: %w", w.name, bid, err)
			}
			out = append(out, LatencySeries{
				Workload: w.name,
				Backend:  bid,
				Summary:  res.Latency.Summarize(),
				ECDF:     res.Latency.ECDF(40),
				Errors:   res.Errors,
			})
		}
	}
	return out, nil
}

// ThroughputPoint is one backend × workload × concurrency throughput.
type ThroughputPoint struct {
	Workload  string
	Backend   BackendID
	Threads   int
	PerSecond float64
	Errors    int
}

// Figure7 measures average throughput for each workload and backend at
// 1 and Concurrency outstanding requests, through the gateway (§6.3.1
// and Fig. 7).
func Figure7(cfg Config) ([]ThroughputPoint, error) {
	type wl struct {
		name     string
		id       uint32
		gen      func(i int) []byte
		requests int
	}
	img := workloads.ImageTransformer(cfg.ImageWidth, cfg.ImageHeight)
	wls := []wl{
		{"web-server", workloads.WebServerID, workloads.WebServer().MakeRequest, cfg.Fig7Requests},
		{"key-value-client", workloads.KVGetClientID, workloads.KVGetClient().MakeRequest, cfg.Fig7Requests},
		{"image-transformer", workloads.ImageTransformerID, img.MakeRequest, cfg.Fig7ImageRequests},
	}
	backends := []BackendID{BackendLambdaNIC, BackendBareMetal, BackendContainer}
	var out []ThroughputPoint
	for _, w := range wls {
		for _, bid := range backends {
			for _, threads := range []int{1, cfg.Concurrency} {
				s, b, err := cfg.newBackend(bid, cfg.set())
				if err != nil {
					return nil, err
				}
				gw := cfg.gateway(s, b)
				res, err := trace.ClosedLoop{
					Concurrency: threads,
					Requests:    w.requests,
					Warmup:      cfg.Warmup,
					Gen:         trace.Fixed(w.id, w.gen),
				}.Run(s, gw)
				if err != nil {
					return nil, fmt.Errorf("figure7 %s/%s/%d: %w", w.name, bid, threads, err)
				}
				out = append(out, ThroughputPoint{
					Workload:  w.name,
					Backend:   bid,
					Threads:   threads,
					PerSecond: res.Throughput.PerSecond(),
					Errors:    res.Errors,
				})
			}
		}
	}
	return out, nil
}

// ContentionResult is one Figure 8 / Table 2 series.
type ContentionResult struct {
	Backend   BackendID
	Summary   metrics.Summary
	ECDF      []metrics.Point
	PerSecond float64
	Errors    int
}

// contentionSet returns three distinct web-server lambdas (§6.3.2).
func contentionSet() []*workloads.Workload {
	return []*workloads.Workload{
		workloads.WebServerVariant("web_a", 11),
		workloads.WebServerVariant("web_b", 12),
		workloads.WebServerVariant("web_c", 13),
	}
}

// Figure8Table2 runs three distinct web-server lambdas concurrently
// with round-robin requests — forcing a context switch per request on
// the CPU backends — and reports latency distributions (Fig. 8) and
// throughput (Table 2) for λ-NIC and the bare-metal backend with all
// threads and a single core.
func Figure8Table2(cfg Config) ([]ContentionResult, error) {
	set := contentionSet()
	gens := make([]trace.Generator, len(set))
	for i, w := range set {
		gens[i] = trace.Fixed(w.ID, w.MakeRequest)
	}
	backends := []BackendID{BackendLambdaNIC, BackendBareMetal, BackendBareMetal1Core}
	var out []ContentionResult
	for _, bid := range backends {
		s, b, err := cfg.newBackend(bid, set)
		if err != nil {
			return nil, err
		}
		gw := cfg.gateway(s, b)
		res, err := trace.ClosedLoop{
			Concurrency: cfg.Concurrency,
			Requests:    cfg.Fig8Requests,
			Warmup:      cfg.Warmup,
			Gen:         trace.RoundRobin(gens...),
		}.Run(s, gw)
		if err != nil {
			return nil, fmt.Errorf("figure8 %s: %w", bid, err)
		}
		out = append(out, ContentionResult{
			Backend:   bid,
			Summary:   res.Latency.Summarize(),
			ECDF:      res.Latency.ECDF(40),
			PerSecond: res.Throughput.PerSecond(),
			Errors:    res.Errors,
		})
	}
	return out, nil
}

// Table3Row is one backend's added resource use for the
// image-transformer workload at Concurrency outstanding requests.
type Table3Row struct {
	Backend BackendID
	Usage   backend.Usage
}

// Table3 measures resource utilization while serving concurrent
// image-transformer requests (§6.4, Table 3).
func Table3(cfg Config) ([]Table3Row, error) {
	backends := []BackendID{BackendLambdaNIC, BackendBareMetal, BackendContainer}
	img := workloads.ImageTransformer(cfg.ImageWidth, cfg.ImageHeight)
	var out []Table3Row
	for _, bid := range backends {
		s, b, err := cfg.newBackend(bid, cfg.set())
		if err != nil {
			return nil, err
		}
		_, err = trace.ClosedLoop{
			Concurrency: cfg.Concurrency,
			Requests:    cfg.Table3Requests,
			Gen:         trace.Fixed(workloads.ImageTransformerID, img.MakeRequest),
		}.Run(s, b)
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", bid, err)
		}
		out = append(out, Table3Row{Backend: bid, Usage: b.Usage()})
	}
	return out, nil
}

// Table4Row is one backend's artifact size and startup time.
type Table4Row struct {
	Backend BackendID
	SizeMiB float64
	Startup time.Duration
}

// Table1Row is one SmartNIC class in the paper's qualitative
// comparison (Table 1).
type Table1Row struct {
	Type            string
	Programmability string
	Performance     string
	DevelopmentCost string
}

// Table1 returns the paper's SmartNIC comparison verbatim (§2.2).
func Table1() []Table1Row {
	return []Table1Row{
		{"FPGA-based", "Hard", "10+ cores, low latency", "High"},
		{"ASIC-based", "Limited", "200+ cores, low latency", "Medium"},
		{"SoC-based", "Easy", "50+ cores, high latency", "Low"},
	}
}
