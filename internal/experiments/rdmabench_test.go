package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// testRdmaBench is a small-but-meaningful configuration: enough
// requests for stable virtual-clock rates, window points spanning the
// knee, and both large-transfer modes.
func testRdmaBench() RdmaBenchConfig {
	def := DefaultRdmaBench()
	return RdmaBenchConfig{
		Requests:       200,
		Warmup:         20,
		Clients:        []int{1, 16},
		Windows:        []int{1, 4, 16},
		LargeOps:       16,
		Transfers:      4,
		DoorbellCost:   def.DoorbellCost,
		StoreRTT:       def.StoreRTT,
		StoreOccupancy: def.StoreOccupancy,
	}
}

func TestRdmaBenchAcceptance(t *testing.T) {
	cfg := Quick()
	rb := testRdmaBench()
	rep, err := RdmaBench(cfg, rb) // also asserts ladder ≡ heap internally
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]struct {
		rps  float64
		p50  int64
		reqs int
	})
	for _, r := range rep.Results {
		byName[r.Name] = struct {
			rps  float64
			p50  int64
			reqs int
		}{r.ReqPerSec, r.P50Ns, r.Requests}
	}
	wantRows := 2 + len(rb.Windows)*len(rb.Clients) + 2
	if len(rep.Results) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rep.Results), wantRows)
	}

	// The one-sided path beats the lambda path on p50 and throughput at
	// every client count (§4.2.1 D3: no parse/match/NPU dispatch).
	for _, c := range rb.Clients {
		lambda := byName[fmt.Sprintf("kvget/lambda/c%d", c)]
		bypass := byName[fmt.Sprintf("kvget/bypass/w%d/c%d", rb.Windows[len(rb.Windows)-1], c)]
		if bypass.rps <= lambda.rps {
			t.Errorf("c=%d: bypass %.0f req/s not above lambda %.0f", c, bypass.rps, lambda.rps)
		}
		if bypass.p50 >= lambda.p50 {
			t.Errorf("c=%d: bypass p50 %dns not below lambda %dns", c, bypass.p50, lambda.p50)
		}
	}

	// Throughput scales with the window at high client counts: w=4
	// beats w=1, and the curve never regresses past the knee.
	cMax := rb.Clients[len(rb.Clients)-1]
	w1 := byName[fmt.Sprintf("kvget/bypass/w1/c%d", cMax)]
	w4 := byName[fmt.Sprintf("kvget/bypass/w4/c%d", cMax)]
	wTop := byName[fmt.Sprintf("kvget/bypass/w%d/c%d", rb.Windows[len(rb.Windows)-1], cMax)]
	if w4.rps <= w1.rps {
		t.Errorf("c=%d: w4 %.0f req/s not above w1 %.0f", cMax, w4.rps, w1.rps)
	}
	if wTop.rps < w4.rps*0.99 {
		t.Errorf("c=%d: throughput regressed past the knee: w4 %.0f, wTop %.0f", cMax, w4.rps, wTop.rps)
	}

	// Doorbell-batched large transfers beat the per-fragment path.
	sizeKiB := rb.LargeOps * 1400 / 1024
	db := byName[fmt.Sprintf("large/doorbell/%dKiB", sizeKiB)]
	pf := byName[fmt.Sprintf("large/perfrag/%dKiB", sizeKiB)]
	if db.rps <= pf.rps {
		t.Errorf("doorbell %.1f transfers/s not above per-fragment %.1f", db.rps, pf.rps)
	}

	out := RenderRdmaBench(rep)
	for _, want := range []string{"bypass speedup over lambda path", "doorbell batching speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRdmaBenchDeterministic(t *testing.T) {
	cfg := Quick()
	rb := testRdmaBench()
	rb.Requests, rb.Warmup, rb.Transfers = 100, 10, 2
	a, err := RdmaBench(cfg, rb)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RdmaBench(cfg, rb)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameRdmaResults(a.Results, b.Results); err != nil {
		t.Fatalf("repeat run diverged: %v", err)
	}
}
