package experiments

import (
	"strings"
	"testing"
)

func TestOptimizerImpact(t *testing.T) {
	r, err := MeasureOptimizerImpact(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.LatencySavedSeconds <= 0 {
		t.Errorf("optimizer saved no latency: %v", r.LatencySavedSeconds)
	}
	// The paper reports 6.3 µs average savings; our stratification pass
	// saves more (it also repins memory levels). Accept the same order
	// of magnitude.
	us := r.LatencySavedSeconds * 1e6
	if us < 0.5 || us > 50 {
		t.Errorf("latency saved = %.2f µs, want 0.5-50 µs", us)
	}
	// Optimization must let strictly more lambdas fit the store.
	if !(r.OptimizedFit > r.NaiveFit) {
		t.Errorf("fit: naive %d, optimized %d; optimization bought nothing",
			r.NaiveFit, r.OptimizedFit)
	}
	if out := RenderOptimizerImpact(r); !strings.Contains(out, "16K store") {
		t.Error("render broken")
	}
}
