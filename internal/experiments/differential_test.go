package experiments

import (
	"reflect"
	"testing"

	"lambdanic/internal/sim"
)

// The simulation kernel is swappable (ladder queue vs binary heap) and
// the chaos fleet can run parallel per-NIC domains. All of those must
// be implementation details: same seed, same experiment, bit-identical
// results. These tests are the cross-kernel / cross-topology
// differential that pins that down.

func withKernel(cfg Config, k sim.KernelKind) Config {
	cfg.Kernel = k
	return cfg
}

func TestFigure6KernelDifferential(t *testing.T) {
	ladder, err := Figure6(withKernel(Quick(), sim.KernelLadder))
	if err != nil {
		t.Fatal(err)
	}
	heap, err := Figure6(withKernel(Quick(), sim.KernelHeap))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ladder, heap) {
		t.Fatalf("Figure6 differs across kernels:\nladder=%+v\nheap=%+v", ladder, heap)
	}
}

// chaosFingerprint is everything a chaos run reports except the raw
// trace spans: parallel mode skips NIC-internal span recording (the
// container would cross goroutines), so spans are the one field allowed
// to differ across topologies.
type chaosFingerprint struct {
	Phases            []ChaosPhase
	Killed            string
	KillAt, EvictedAt interface{}
	Recovery          float64
	Failovers         uint64
	Survivors         []string
	Transitions       int
	Executed          uint64
	FinalClock        interface{}
}

func fingerprint(r *ChaosReport) chaosFingerprint {
	return chaosFingerprint{
		Phases:      r.Phases,
		Killed:      r.Killed,
		KillAt:      r.KillAt,
		EvictedAt:   r.EvictedAt,
		Recovery:    r.RecoveryIntervals,
		Failovers:   r.Failovers,
		Survivors:   r.Survivors,
		Transitions: len(r.Transitions),
		Executed:    r.Executed,
		FinalClock:  r.FinalClock,
	}
}

func TestChaosDifferential(t *testing.T) {
	ch := QuickChaos()

	ladder, err := Chaos(withKernel(Quick(), sim.KernelLadder), ch)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := Chaos(withKernel(Quick(), sim.KernelHeap), ch)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ChaosParallel(withKernel(Quick(), sim.KernelLadder), ch)
	if err != nil {
		t.Fatal(err)
	}
	parHeap, err := ChaosParallel(withKernel(Quick(), sim.KernelHeap), ch)
	if err != nil {
		t.Fatal(err)
	}

	want := fingerprint(ladder)
	for name, rep := range map[string]*ChaosReport{
		"heap": heap, "parallel-ladder": par, "parallel-heap": parHeap,
	} {
		if got := fingerprint(rep); !reflect.DeepEqual(got, want) {
			t.Errorf("%s chaos run diverged:\n got=%+v\nwant=%+v", name, got, want)
		}
	}
	if par.Domains != ch.Workers+1 {
		t.Errorf("parallel run used %d domains, want %d", par.Domains, ch.Workers+1)
	}
	if ladder.Domains != 1 {
		t.Errorf("shared-clock run reports %d domains, want 1", ladder.Domains)
	}
}

func TestLoadCurveParallelMatchesSerial(t *testing.T) {
	cfg := Quick()
	serial, err := LoadLatencyCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := LoadLatencyCurveParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel load curve diverged:\nserial=%+v\nparallel=%+v", serial, par)
	}
}

func TestParallelScaleOutScales(t *testing.T) {
	points, err := ParallelScaleOut(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for _, p := range points {
		if p.PerSecond <= 0 {
			t.Errorf("%d workers: non-positive throughput %f", p.Workers, p.PerSecond)
		}
	}
	// Independent identical domains: aggregate throughput is exactly
	// workers x the single-worker rate, so efficiency is exactly 1.
	for _, p := range points {
		if p.Efficiency < 0.999 || p.Efficiency > 1.001 {
			t.Errorf("%d workers: efficiency %f, want ~1", p.Workers, p.Efficiency)
		}
	}
}
