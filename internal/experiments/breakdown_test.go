package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"lambdanic/internal/obs"
)

// TestLatencyBreakdownAttribution is the tracing acceptance check: for
// every traced request of a closed-loop run on the nicsim backend, the
// recorded stage spans (queue + instruction + memory stalls +
// transport) must sum to the measured end-to-end latency within 1%.
func TestLatencyBreakdownAttribution(t *testing.T) {
	rep, err := LatencyBreakdown(Quick())
	if err != nil {
		t.Fatalf("LatencyBreakdown: %v", err)
	}
	if len(rep.Requests) == 0 {
		t.Fatal("no requests traced")
	}
	for _, r := range rep.Requests {
		e2e := r.End - r.Start
		if e2e <= 0 {
			t.Fatalf("request %d: non-positive e2e latency %v", r.ID, e2e)
		}
		var sum time.Duration
		for _, sp := range r.Spans {
			sum += sp.End - sp.Start
		}
		diff := sum - e2e
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.01*float64(e2e) {
			t.Errorf("request %d (%s): stage sum %v vs e2e %v (diff %v > 1%%)",
				r.ID, r.Label, sum, e2e, diff)
		}
	}
	// Every benchmark workload must appear, with the pipeline's stages
	// attributed: instruction cycles and at least one memory level.
	if len(rep.Workloads) != 3 {
		t.Fatalf("expected 3 workload breakdowns, got %d", len(rep.Workloads))
	}
	for _, wb := range rep.Workloads {
		stages := map[obs.Stage]bool{}
		for _, st := range wb.Stages {
			stages[st.Stage] = true
		}
		if !stages[obs.StageExec] {
			t.Errorf("%s: no instruction-cycle stage attributed", wb.Label)
		}
		mem := stages[obs.StageMemLMEM] || stages[obs.StageMemCTM] ||
			stages[obs.StageMemIMEM] || stages[obs.StageMemEMEM]
		if !mem {
			t.Errorf("%s: no memory-stall stage attributed", wb.Label)
		}
		if !stages[obs.StageTransport] {
			t.Errorf("%s: no transport stage attributed", wb.Label)
		}
		if wb.Coverage < 0.99 || wb.Coverage > 1.01 {
			t.Errorf("%s: coverage %.4f outside [0.99, 1.01]", wb.Label, wb.Coverage)
		}
	}
}

// TestLatencyBreakdownChromeExport checks the traced run exports valid
// Chrome trace-event JSON.
func TestLatencyBreakdownChromeExport(t *testing.T) {
	rep, err := LatencyBreakdown(Quick())
	if err != nil {
		t.Fatalf("LatencyBreakdown: %v", err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rep.Requests); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no trace events")
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X", "i", "M":
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
	}
	if s := RenderLatencyBreakdown(rep); len(s) == 0 {
		t.Error("empty rendered report")
	}
}
