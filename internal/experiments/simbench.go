package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/benchio"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/trace"
	"lambdanic/internal/workloads"
)

// The simbench experiment measures the simulation kernel itself — the
// substrate every other experiment runs on — in wall-clock time, and
// writes BENCH_sim.json so the repo tracks scheduler throughput across
// PRs the same way it tracks the RPC data plane (BENCH_rpc.json).
//
// Three row families:
//
//   - sched/<kernel>[-pooled]: steady-state self-rescheduling event
//     load with the NIC-simulation delay mixture (mostly microsecond
//     service times, some tens-of-microseconds wire trips, a far tail
//     of 10 ms control-plane timers). This is the single-thread
//     events/sec headline: ladder + pooling versus the binary heap.
//   - timers/<kernel>: timeout churn — a ring of pending timers, each
//     driver tick rescheduling the oldest (sim.Reschedule's fired-event
//     fast path), the dominant pattern of RPC timeout management.
//   - scaleout16/domains=D: a 16-NIC closed-loop fleet packed into D
//     independent simulation domains run by sim.Parallel. Total work is
//     identical for every D (the domains never interact), so events/sec
//     versus D is a pure parallel-speedup curve, bounded by GOMAXPROCS.
//
// In every row ReqPerSec is simulation events fired per wall-clock
// second and Requests is the number of events fired.

// SimBenchConfig sizes the simulation-kernel benchmark.
type SimBenchConfig struct {
	// Events is the fired-event target per single-thread scenario.
	Events int
	// Outstanding is the number of concurrent event chains (sched rows)
	// and pending timers (timer rows).
	Outstanding int
	// ScaleRequests is the closed-loop request count per NIC in the
	// scale-out rows.
	ScaleRequests int
	// NICs is the fleet size of the scale-out rows.
	NICs int
	// Domains are the domain counts to pack the fleet into; each must
	// divide NICs.
	Domains []int
	// Reps runs every scenario this many times and keeps the fastest
	// measurement — best-of-N, the standard defense against scheduler
	// and GC noise when a regression gate reads the numbers.
	Reps int
}

// DefaultSimBench returns the full-size kernel benchmark.
func DefaultSimBench() SimBenchConfig {
	return SimBenchConfig{
		Events:        2_000_000,
		Outstanding:   32_768,
		ScaleRequests: 2_000,
		NICs:          16,
		Domains:       []int{1, 2, 4, 8, 16},
		Reps:          3,
	}
}

// QuickSimBench returns a reduced configuration for smoke runs and CI.
func QuickSimBench() SimBenchConfig {
	return SimBenchConfig{
		Events:        500_000,
		Outstanding:   32_768,
		ScaleRequests: 2_000,
		NICs:          16,
		Domains:       []int{1, 2, 4, 8, 16},
		Reps:          3,
	}
}

// simBenchRow measures one scenario reps times — prep builds the
// scenario outside the clock, the returned runner executes it — and
// keeps the fastest repetition. The memory-stats delta divided by fired
// events gives allocs/event; the pooling rows should drive it to ~0.
func simBenchRow(name string, concurrency, reps int, prep func() (func() uint64, error)) (benchio.Result, error) {
	if reps < 1 {
		reps = 1
	}
	var best benchio.Result
	for rep := 0; rep < reps; rep++ {
		run, err := prep()
		if err != nil {
			return benchio.Result{}, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		executed := run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)

		res := benchio.Result{
			Name:        name,
			Transport:   "sim",
			Mode:        "closed",
			Concurrency: concurrency,
			Requests:    int(executed),
		}
		if elapsed > 0 && executed > 0 {
			res.ReqPerSec = float64(executed) / elapsed.Seconds()
			res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(executed)
			res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(executed)
		}
		if res.ReqPerSec > best.ReqPerSec {
			best = res
		}
	}
	return best, nil
}

// schedDelay is the steady-state delay mixture: 70% NPU service times
// (1–10 µs), 20% wire trips (40–60 µs), 10% control-plane timers
// (10 ms) — the event population a λ-NIC fleet simulation schedules.
func schedDelay(fired int) time.Duration {
	switch fired % 10 {
	case 0:
		return 10 * time.Millisecond
	case 1, 2:
		return time.Duration(40+fired%20) * time.Microsecond
	default:
		return time.Duration(1000+fired%9000) * time.Nanosecond
	}
}

func runSched(seed int64, kind sim.KernelKind, pooled bool, events, outstanding int) uint64 {
	s := sim.NewWithKernel(seed, kind)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired >= events {
			return
		}
		if pooled {
			s.After(schedDelay(fired), tick)
		} else {
			s.Schedule(schedDelay(fired), tick)
		}
	}
	for i := 0; i < outstanding; i++ {
		s.At(sim.Time(i)*time.Microsecond, tick)
	}
	for fired < events && s.Step() {
	}
	return s.Executed
}

func runTimerChurn(seed int64, kind sim.KernelKind, events, outstanding int) uint64 {
	const timeout = 500 * time.Microsecond
	s := sim.NewWithKernel(seed, kind)
	noop := func() {}
	ring := make([]*sim.Event, outstanding)
	for i := range ring {
		ring[i] = s.Schedule(timeout+sim.Time(i)*time.Nanosecond, noop)
	}
	ops := 0
	var drive func()
	drive = func() {
		// The common fate of an RPC timeout: it never fires; the next
		// request re-arms it.
		ring[ops%outstanding] = s.Reschedule(ring[ops%outstanding], timeout)
		ops++
		if ops < events {
			s.After(time.Microsecond, drive)
		}
	}
	s.After(time.Microsecond, drive)
	if err := s.RunUntilIdle(); err != nil {
		return s.Executed
	}
	return s.Executed
}

// prepScaleOutDomains packs the NIC fleet into domainCount independent
// simulation domains — fleet construction (firmware compile, RDMA
// region registration) happens here, OUTSIDE the timed window, so the
// returned runner measures only event execution under sim.Parallel.
func prepScaleOutDomains(cfg Config, sb SimBenchConfig, domainCount int) (func() (uint64, error), error) {
	web := workloads.WebServer()
	p := sim.NewParallel(0)
	perDomain := sb.NICs / domainCount
	for d := 0; d < domainCount; d++ {
		dom := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
		for j := 0; j < perDomain; j++ {
			b, err := backend.NewLambdaNIC(dom.Sim, cfg.Testbed, nicsim.DispatchUniform)
			if err != nil {
				return nil, err
			}
			if err := b.Deploy([]*workloads.Workload{web}); err != nil {
				return nil, err
			}
			if _, err := (trace.ClosedLoop{
				Concurrency: 8,
				Requests:    sb.ScaleRequests,
				Warmup:      sb.ScaleRequests / 10,
				Gen:         trace.Fixed(web.ID, web.MakeRequest),
			}).Start(dom.Sim, b); err != nil {
				return nil, err
			}
		}
	}
	return func() (uint64, error) {
		if err := p.RunUntilIdle(); err != nil {
			return 0, err
		}
		return p.Executed(), nil
	}, nil
}

// SimBench measures the simulation kernel and returns the report
// written to BENCH_sim.json.
func SimBench(cfg Config, sb SimBenchConfig) (benchio.Report, error) {
	var results []benchio.Result

	for _, row := range []struct {
		name   string
		kind   sim.KernelKind
		pooled bool
	}{
		{"sched/heap", sim.KernelHeap, false},
		{"sched/heap-pooled", sim.KernelHeap, true},
		{"sched/ladder", sim.KernelLadder, false},
		{"sched/ladder-pooled", sim.KernelLadder, true},
	} {
		row := row
		res, err := simBenchRow(row.name, 1, sb.Reps, func() (func() uint64, error) {
			return func() uint64 {
				return runSched(cfg.Seed, row.kind, row.pooled, sb.Events, sb.Outstanding)
			}, nil
		})
		if err != nil {
			return benchio.Report{}, fmt.Errorf("simbench: %w", err)
		}
		results = append(results, res)
	}

	for _, row := range []struct {
		name string
		kind sim.KernelKind
	}{
		{"timers/heap", sim.KernelHeap},
		{"timers/ladder", sim.KernelLadder},
	} {
		row := row
		res, err := simBenchRow(row.name, 1, sb.Reps, func() (func() uint64, error) {
			return func() uint64 {
				return runTimerChurn(cfg.Seed, row.kind, sb.Events, sb.Outstanding)
			}, nil
		})
		if err != nil {
			return benchio.Report{}, fmt.Errorf("simbench: %w", err)
		}
		results = append(results, res)
	}

	for _, d := range sb.Domains {
		if d <= 0 || sb.NICs%d != 0 {
			return benchio.Report{}, fmt.Errorf("simbench: %d domains does not divide %d NICs", d, sb.NICs)
		}
		d := d
		var runErr error
		res, err := simBenchRow(fmt.Sprintf("scaleout16/domains=%d", d), d, sb.Reps, func() (func() uint64, error) {
			run, err := prepScaleOutDomains(cfg, sb, d)
			if err != nil {
				return nil, err
			}
			return func() uint64 {
				n, err := run()
				if err != nil {
					runErr = err
				}
				return n
			}, nil
		})
		if err != nil {
			return benchio.Report{}, fmt.Errorf("simbench: %w", err)
		}
		if runErr != nil {
			return benchio.Report{}, fmt.Errorf("simbench: %w", runErr)
		}
		results = append(results, res)
	}

	return benchio.NewReport(results), nil
}

// RenderSimBench prints the kernel benchmark report, including the
// headline speedup of the pooled ladder configuration over the
// non-pooled binary heap.
func RenderSimBench(rep benchio.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulation kernel benchmark (events/sec, GOMAXPROCS=%d)\n", rep.GOMAXPROCS)
	fmt.Fprintf(&b, "  %-24s %12s %14s %10s %10s\n",
		"scenario", "events", "events/sec", "allocs/ev", "B/ev")
	byName := make(map[string]benchio.Result, len(rep.Results))
	for _, r := range rep.Results {
		byName[r.Name] = r
		fmt.Fprintf(&b, "  %-24s %12d %14.0f %10.3f %10.1f\n",
			r.Name, r.Requests, r.ReqPerSec, r.AllocsPerOp, r.BytesPerOp)
	}
	if heap, ok := byName["sched/heap"]; ok && heap.ReqPerSec > 0 {
		if lp, ok := byName["sched/ladder-pooled"]; ok {
			fmt.Fprintf(&b, "  single-thread speedup (ladder-pooled vs heap): %.2fx\n",
				lp.ReqPerSec/heap.ReqPerSec)
		}
	}
	if d1, ok := byName["scaleout16/domains=1"]; ok && d1.ReqPerSec > 0 {
		for _, r := range rep.Results {
			var d int
			if _, err := fmt.Sscanf(r.Name, "scaleout16/domains=%d", &d); err == nil && d > 1 {
				fmt.Fprintf(&b, "  %-24s parallel speedup: %.2fx\n", r.Name, r.ReqPerSec/d1.ReqPerSec)
			}
		}
	}
	return b.String()
}
