package experiments

import (
	"strings"
	"testing"

	"lambdanic/internal/workloads"
)

// The experiment tests run the Quick configuration and assert the
// paper's qualitative results: orderings, factor bands, and exact
// static quantities. Absolute paper-scale numbers are recorded by the
// full-size runs in EXPERIMENTS.md.

func fig6ByKey(series []LatencySeries) map[string]LatencySeries {
	out := make(map[string]LatencySeries, len(series))
	for _, s := range series {
		out[s.Workload+"/"+string(s.Backend)] = s
	}
	return out
}

func TestFigure6Shape(t *testing.T) {
	series, err := Figure6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 9 {
		t.Fatalf("series = %d, want 9 (3 workloads x 3 backends)", len(series))
	}
	by := fig6ByKey(series)
	for _, s := range series {
		if s.Errors != 0 {
			t.Errorf("%s/%s: %d errors", s.Workload, s.Backend, s.Errors)
		}
		if s.Summary.N == 0 || s.Summary.Mean <= 0 {
			t.Errorf("%s/%s: empty sample", s.Workload, s.Backend)
		}
	}
	for _, w := range []string{"web-server", "key-value-client", "image-transformer"} {
		nic := by[w+"/lambda-nic"].Summary.Mean
		bare := by[w+"/bare-metal"].Summary.Mean
		cont := by[w+"/container"].Summary.Mean
		if !(nic < bare && bare < cont) {
			t.Errorf("%s: ordering violated nic=%v bare=%v cont=%v", w, nic, bare, cont)
		}
	}
	// Web-server factors land in the paper's bands (Fig. 6: ~30x over
	// bare metal, ~880x over containers).
	web := "web-server"
	if r := by[web+"/bare-metal"].Summary.Mean / by[web+"/lambda-nic"].Summary.Mean; r < 20 || r > 45 {
		t.Errorf("web bare/nic = %.0fx, want ~30x", r)
	}
	if r := by[web+"/container"].Summary.Mean / by[web+"/lambda-nic"].Summary.Mean; r < 600 || r > 1200 {
		t.Errorf("web container/nic = %.0fx, want ~880x", r)
	}
	// Image transformer: modest 3-5x advantage (data-bound).
	img := "image-transformer"
	if r := by[img+"/bare-metal"].Summary.Mean / by[img+"/lambda-nic"].Summary.Mean; r < 2 || r > 8 {
		t.Errorf("image bare/nic = %.1fx, want 3-5x band", r)
	}
	// Tail: λ-NIC p99 stays near its mean (run to completion); the CPU
	// backends' jittered tails do not.
	nicWeb := by[web+"/lambda-nic"].Summary
	bareWeb := by[web+"/bare-metal"].Summary
	if nicWeb.P99 > 2*nicWeb.Mean {
		t.Errorf("λ-NIC tail not tight: p99=%v mean=%v", nicWeb.P99, nicWeb.Mean)
	}
	if bareWeb.P99 <= bareWeb.P50 {
		t.Errorf("bare-metal tail missing: p99=%v p50=%v", bareWeb.P99, bareWeb.P50)
	}
}

func TestFigure7Shape(t *testing.T) {
	points, err := Figure7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 18 {
		t.Fatalf("points = %d, want 18 (3 workloads x 3 backends x 2 thread counts)", len(points))
	}
	by := make(map[string]ThroughputPoint, len(points))
	for _, p := range points {
		if p.PerSecond <= 0 {
			t.Errorf("%s/%s/%d: zero throughput", p.Workload, p.Backend, p.Threads)
		}
		by[p.Workload+"/"+string(p.Backend)+"/"+threadKey(p.Threads)] = p
	}
	// λ-NIC leads every workload at 56 threads.
	for _, w := range []string{"web-server", "key-value-client", "image-transformer"} {
		nic := by[w+"/lambda-nic/56"].PerSecond
		bare := by[w+"/bare-metal/56"].PerSecond
		cont := by[w+"/container/56"].PerSecond
		if !(nic > bare && nic > cont) {
			t.Errorf("%s @56: λ-NIC not fastest (nic=%.0f bare=%.0f cont=%.0f)", w, nic, bare, cont)
		}
	}
	// Web at 56 threads: ~27x over bare metal (paper's lower bound).
	if r := by["web-server/lambda-nic/56"].PerSecond / by["web-server/bare-metal/56"].PerSecond; r < 15 || r > 50 {
		t.Errorf("web 56-thread nic/bare = %.0fx, want ~27-31x", r)
	}
	// KV at 56 threads: the container collapses (conntrack penalty),
	// approaching the paper's 736x.
	if r := by["key-value-client/lambda-nic/56"].PerSecond / by["key-value-client/container/56"].PerSecond; r < 400 {
		t.Errorf("kv 56-thread nic/container = %.0fx, want ≫ 400x", r)
	}
	// More threads must not reduce λ-NIC throughput.
	if by["web-server/lambda-nic/56"].PerSecond < by["web-server/lambda-nic/1"].PerSecond {
		t.Error("λ-NIC throughput dropped with concurrency")
	}
}

func threadKey(n int) string {
	if n == 1 {
		return "1"
	}
	return "56"
}

func TestFigure8Table2Shape(t *testing.T) {
	results, err := Figure8Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 series", len(results))
	}
	by := make(map[BackendID]ContentionResult, 3)
	for _, r := range results {
		by[r.Backend] = r
	}
	nic, bare, one := by[BackendLambdaNIC], by[BackendBareMetal], by[BackendBareMetal1Core]
	// Table 2 bands: λ-NIC ~58k, bare ~950, single core ~520.
	if nic.PerSecond < 45_000 || nic.PerSecond > 65_000 {
		t.Errorf("λ-NIC contention throughput = %.0f, want ~58000", nic.PerSecond)
	}
	if bare.PerSecond < 700 || bare.PerSecond > 1200 {
		t.Errorf("bare contention throughput = %.0f, want ~950", bare.PerSecond)
	}
	if one.PerSecond < 350 || one.PerSecond > 650 {
		t.Errorf("single-core throughput = %.0f, want ~520", one.PerSecond)
	}
	// λ-NIC completes requests 55-100x+ faster (paper text, Table 2).
	if r := bare.Summary.Mean / nic.Summary.Mean; r < 40 {
		t.Errorf("contention latency ratio = %.0fx, want ≫ 40x", r)
	}
	if !(one.Summary.Mean > bare.Summary.Mean) {
		t.Error("single core not slower than 56 threads")
	}
	// λ-NIC shows "no significant change" vs isolation: its contention
	// mean stays in the sub-millisecond gateway-dominated regime.
	if nic.Summary.Mean > 2e-3 {
		t.Errorf("λ-NIC contention mean = %v s, want < 2ms", nic.Summary.Mean)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	by := make(map[BackendID]Table3Row, 3)
	for _, r := range rows {
		by[r.Backend] = r
	}
	nic, bare, cont := by[BackendLambdaNIC], by[BackendBareMetal], by[BackendContainer]
	if nic.Usage.HostCPUPercent >= 1 {
		t.Errorf("λ-NIC host CPU = %.1f%%, want ~0.1%%", nic.Usage.HostCPUPercent)
	}
	if nic.Usage.HostMemoryMiB != 0 {
		t.Errorf("λ-NIC host memory = %.1f, want 0", nic.Usage.HostMemoryMiB)
	}
	if nic.Usage.NICMemoryMiB <= 0 {
		t.Error("λ-NIC NIC memory missing")
	}
	if bare.Usage.NICMemoryMiB != 0 || cont.Usage.NICMemoryMiB != 0 {
		t.Error("CPU backends must not use NIC memory")
	}
	if !(cont.Usage.HostMemoryMiB > bare.Usage.HostMemoryMiB) {
		t.Error("container memory not above bare metal")
	}
	if cont.Usage.HostMemoryMiB-bare.Usage.HostMemoryMiB < 100 {
		t.Errorf("container memory premium = %.1f MiB, want ~157 MiB",
			cont.Usage.HostMemoryMiB-bare.Usage.HostMemoryMiB)
	}
	if !(bare.Usage.HostCPUPercent > nic.Usage.HostCPUPercent) {
		t.Error("bare CPU not above λ-NIC")
	}
	if !(cont.Usage.HostCPUPercent > bare.Usage.HostCPUPercent) {
		t.Error("container CPU not above bare metal")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	by := make(map[BackendID]Table4Row, 3)
	for _, r := range rows {
		by[r.Backend] = r
	}
	nic, bare, cont := by[BackendLambdaNIC], by[BackendBareMetal], by[BackendContainer]
	// Paper Table 4: 11.0/17.0/153.0 MiB and 19.8/5.0/31.7 s.
	checks := []struct {
		name    string
		got     float64
		want    float64
		percent float64
	}{
		{"λ-NIC size", nic.SizeMiB, 11.0, 5},
		{"bare size", bare.SizeMiB, 17.0, 5},
		{"container size", cont.SizeMiB, 153.0, 5},
		{"λ-NIC startup", nic.Startup.Seconds(), 19.8, 5},
		{"bare startup", bare.Startup.Seconds(), 5.0, 5},
		{"container startup", cont.Startup.Seconds(), 31.7, 5},
	}
	for _, c := range checks {
		lo, hi := c.want*(1-c.percent/100), c.want*(1+c.percent/100)
		if c.got < lo || c.got > hi {
			t.Errorf("%s = %.1f, want %.1f ± %.0f%%", c.name, c.got, c.want, c.percent)
		}
	}
	// λ-NIC's image is ~13x smaller than the container's (paper §6.4).
	if r := cont.SizeMiB / nic.SizeMiB; r < 12 || r > 15 {
		t.Errorf("container/λ-NIC size ratio = %.1fx, want ~13x", r)
	}
}

func TestFigure9Exact(t *testing.T) {
	results, err := Figure9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	if results[0].Instructions != workloads.NaiveProgramTarget {
		t.Errorf("naive = %d, want %d", results[0].Instructions, workloads.NaiveProgramTarget)
	}
	// Paper: -5.11%, -8.65%, -9.56% cumulative.
	want := []float64{0, 5.11, 8.65, 9.56}
	for i, r := range results {
		got := 100 * float64(workloads.NaiveProgramTarget-r.Instructions) / float64(workloads.NaiveProgramTarget)
		if d := got - want[i]; d < -0.25 || d > 0.25 {
			t.Errorf("pass %q: -%.2f%%, want -%.2f%%", r.Pass, got, want[i])
		}
	}
}

func TestTable1Static(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Type != "ASIC-based" || rows[1].Performance != "200+ cores, low latency" {
		t.Errorf("ASIC row wrong: %+v", rows[1])
	}
}

func TestRenderers(t *testing.T) {
	cfg := Quick()
	cfg.Fig6Samples = 10
	cfg.Fig7Requests = 40
	cfg.Fig7ImageRequests = 4
	cfg.Fig8Requests = 60
	cfg.Table3Requests = 8

	f6, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFigure6(f6); !strings.Contains(out, "web-server") || !strings.Contains(out, "lambda-nic") {
		t.Errorf("RenderFigure6 incomplete:\n%s", out)
	}
	if out := RenderECDF("test", f6[0].ECDF); !strings.Contains(out, "ECDF") {
		t.Error("RenderECDF wrong")
	}
	f7, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFigure7(f7); !strings.Contains(out, "req/s") {
		t.Error("RenderFigure7 wrong")
	}
	f8, err := Figure8Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFigure8Table2(f8); !strings.Contains(out, "throughput") {
		t.Error("RenderFigure8Table2 wrong")
	}
	t3, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderTable3(t3); !strings.Contains(out, "Host CPU") {
		t.Error("RenderTable3 wrong")
	}
	t4, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderTable4(t4); !strings.Contains(out, "Startup") {
		t.Error("RenderTable4 wrong")
	}
	f9, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderFigure9(f9); !strings.Contains(out, "unoptimized") {
		t.Error("RenderFigure9 wrong")
	}
	if out := RenderTable1(Table1()); !strings.Contains(out, "ASIC") {
		t.Error("RenderTable1 wrong")
	}
}

func TestDeterministicExperiments(t *testing.T) {
	cfg := Quick()
	cfg.Fig8Requests = 100
	run := func() float64 {
		r, err := Figure8Table2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r[0].PerSecond
	}
	if a, b := run(), run(); a != b {
		t.Errorf("experiments not deterministic: %v vs %v", a, b)
	}
}
