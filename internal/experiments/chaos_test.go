package experiments

import (
	"strings"
	"testing"

	"lambdanic/internal/healthd"
)

// TestChaosRecovery is the acceptance check for the self-healing loop:
// the crashed worker must be detected and evicted within the detector's
// design bound of EvictAfter+2 heartbeat intervals, availability must
// return to 100% once the survivors own the route, and the tail must
// re-converge to the healthy baseline.
func TestChaosRecovery(t *testing.T) {
	cfg := Quick()
	rep, err := Chaos(cfg, QuickChaos())
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(rep.Phases))
	}
	before, during, after := rep.Phases[0], rep.Phases[1], rep.Phases[2]
	for _, p := range rep.Phases {
		if p.Requests == 0 {
			t.Fatalf("phase %s saw no requests", p.Name)
		}
	}

	// Eviction within the bounded number of heartbeat intervals: the
	// detector needs EvictAfter intervals of silence, plus up to one
	// interval since the last beat and one of check granularity.
	bound := QuickChaos().EvictAfter + 2
	if rep.RecoveryIntervals <= 0 || rep.RecoveryIntervals > bound {
		t.Errorf("recovery took %.2f heartbeat intervals, want (0, %.0f]",
			rep.RecoveryIntervals, bound)
	}

	// The healthy fleet and the recovered fleet both serve everything.
	if before.Availability != 1.0 {
		t.Errorf("before availability = %v, want 1.0", before.Availability)
	}
	if after.Availability != 1.0 {
		t.Errorf("after availability = %v (%d/%d errors), want 1.0",
			after.Availability, after.Errors, after.Requests)
	}
	// The outage window is visible: failovers happened, and the tail
	// during the window carries the attempt timeout.
	if rep.Failovers == 0 {
		t.Error("no failovers recorded during the outage")
	}
	if during.P99 <= before.P99 {
		t.Errorf("during p99 %v not elevated over before p99 %v", during.P99, before.P99)
	}
	// Tail re-convergence: after eviction the route holds only live
	// workers, so p99 returns to the healthy order of magnitude.
	if after.P99 > 2*before.P99 {
		t.Errorf("after p99 %v did not re-converge (before %v)", after.P99, before.P99)
	}

	// The dead worker is gone from the placement; the survivors remain.
	for _, w := range rep.Survivors {
		if w == rep.Killed {
			t.Errorf("killed worker %s still placed: %v", rep.Killed, rep.Survivors)
		}
	}
	if want := QuickChaos().Workers - 1; len(rep.Survivors) != want {
		t.Errorf("survivors = %v, want %d workers", rep.Survivors, want)
	}

	// The detector's log shows the death, and both fault instants are
	// marked for the Chrome trace.
	sawDead := false
	for _, tr := range rep.Transitions {
		if tr.Worker == rep.Killed && tr.To == healthd.StatusDead {
			sawDead = true
		}
	}
	if !sawDead {
		t.Errorf("no Dead transition for %s in %+v", rep.Killed, rep.Transitions)
	}
	if len(rep.Marks) < 2 {
		t.Fatalf("marks = %+v, want crash + evict", rep.Marks)
	}
	for i, want := range []string{"nic-crash:", "evict:"} {
		if !strings.HasPrefix(rep.Marks[i].Name, want) {
			t.Errorf("mark %d = %q, want prefix %q", i, rep.Marks[i].Name, want)
		}
	}
	if len(rep.Requests) == 0 {
		t.Error("no request traces collected")
	}

	if out := RenderChaos(rep); !strings.Contains(out, "availability") {
		t.Errorf("render missing header:\n%s", out)
	}
}

// TestChaosDeterministic asserts the whole experiment — fault
// schedule, detection, eviction, and every latency percentile — is a
// pure function of the seed.
func TestChaosDeterministic(t *testing.T) {
	cfg := Quick()
	a, err := Chaos(cfg, QuickChaos())
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	b, err := Chaos(cfg, QuickChaos())
	if err != nil {
		t.Fatalf("Chaos repeat: %v", err)
	}
	if a.KillAt != b.KillAt || a.EvictedAt != b.EvictedAt {
		t.Errorf("instants differ: %v/%v vs %v/%v", a.KillAt, a.EvictedAt, b.KillAt, b.EvictedAt)
	}
	if a.Failovers != b.Failovers {
		t.Errorf("failovers differ: %d vs %d", a.Failovers, b.Failovers)
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase counts differ: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa != pb {
			t.Errorf("phase %s differs:\n%+v\n%+v", pa.Name, pa, pb)
		}
	}
}

// TestChaosSLOReport asserts the telemetry plane's view of the outage:
// burn rates spike while the rolling window covers the dead NIC and
// decay back to zero once the survivors own the route.
func TestChaosSLOReport(t *testing.T) {
	ch := QuickChaos()
	rep, err := Chaos(Quick(), ch)
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if rep.SLO == nil || len(rep.SLO.Samples) == 0 {
		t.Fatal("no SLO report attached")
	}
	if want := 4 * ch.HeartbeatInterval; rep.SLO.Window != want {
		t.Errorf("SLO window = %v, want %v", rep.SLO.Window, want)
	}

	// Steady-state burn just before the kill (past the warmup where the
	// very first requests race the placement watch), peak burn while
	// the window covers the outage, and the final sample after
	// recovery.
	window := 4 * ch.HeartbeatInterval
	var steadyBurn, outageBurn float64
	for _, s := range rep.SLO.Samples {
		lat := s.Status("p99-latency")
		if lat == nil {
			t.Fatal("p99-latency objective missing from sample")
		}
		if s.At > rep.KillAt/2 && s.At <= rep.KillAt && lat.BurnRate > steadyBurn {
			steadyBurn = lat.BurnRate
		}
		if s.At > rep.KillAt && s.At <= rep.EvictedAt+window && lat.BurnRate > outageBurn {
			outageBurn = lat.BurnRate
		}
	}
	if steadyBurn != 0 {
		t.Errorf("steady-state latency burn = %v, want 0", steadyBurn)
	}
	if outageBurn <= 1 {
		t.Errorf("outage latency burn = %v, want > 1 (budget burning fast)", outageBurn)
	}

	final := rep.SLO.Samples[len(rep.SLO.Samples)-1]
	for _, name := range []string{"availability", "p99-latency"} {
		st := final.Status(name)
		if st == nil {
			t.Fatalf("objective %s missing from final sample", name)
		}
		if st.BurnRate != 0 || !st.Met {
			t.Errorf("final %s burn = %v met=%v, want recovered (0, true)", name, st.BurnRate, st.Met)
		}
	}

	// The summary mirrors the timeline: the worst burn is the outage
	// spike and its peak falls inside the outage window.
	for _, sum := range rep.SLO.Summary {
		if sum.Name != "p99-latency" {
			continue
		}
		if sum.WorstBurnRate != outageBurn {
			t.Errorf("summary worst burn %v != timeline max %v", sum.WorstBurnRate, outageBurn)
		}
		if sum.PeakAt <= rep.KillAt || sum.PeakAt > rep.EvictedAt+window {
			t.Errorf("peak at %v, want inside outage window (%v, %v]",
				sum.PeakAt, rep.KillAt, rep.EvictedAt+window)
		}
		if sum.FinalBurnRate != 0 {
			t.Errorf("summary final burn = %v, want 0", sum.FinalBurnRate)
		}
	}

	// The rendered report carries the SLO table.
	out := RenderChaos(rep)
	for _, want := range []string{"SLO report", "p99-latency", "WORST BURN"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	// And it serializes for the bench harness's SLO_chaos.json artifact.
	raw, err := rep.SLO.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "worst_burn_rate") {
		t.Error("JSON report missing summary fields")
	}
}
