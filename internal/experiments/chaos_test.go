package experiments

import (
	"strings"
	"testing"

	"lambdanic/internal/healthd"
)

// TestChaosRecovery is the acceptance check for the self-healing loop:
// the crashed worker must be detected and evicted within the detector's
// design bound of EvictAfter+2 heartbeat intervals, availability must
// return to 100% once the survivors own the route, and the tail must
// re-converge to the healthy baseline.
func TestChaosRecovery(t *testing.T) {
	cfg := Quick()
	rep, err := Chaos(cfg, QuickChaos())
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(rep.Phases))
	}
	before, during, after := rep.Phases[0], rep.Phases[1], rep.Phases[2]
	for _, p := range rep.Phases {
		if p.Requests == 0 {
			t.Fatalf("phase %s saw no requests", p.Name)
		}
	}

	// Eviction within the bounded number of heartbeat intervals: the
	// detector needs EvictAfter intervals of silence, plus up to one
	// interval since the last beat and one of check granularity.
	bound := QuickChaos().EvictAfter + 2
	if rep.RecoveryIntervals <= 0 || rep.RecoveryIntervals > bound {
		t.Errorf("recovery took %.2f heartbeat intervals, want (0, %.0f]",
			rep.RecoveryIntervals, bound)
	}

	// The healthy fleet and the recovered fleet both serve everything.
	if before.Availability != 1.0 {
		t.Errorf("before availability = %v, want 1.0", before.Availability)
	}
	if after.Availability != 1.0 {
		t.Errorf("after availability = %v (%d/%d errors), want 1.0",
			after.Availability, after.Errors, after.Requests)
	}
	// The outage window is visible: failovers happened, and the tail
	// during the window carries the attempt timeout.
	if rep.Failovers == 0 {
		t.Error("no failovers recorded during the outage")
	}
	if during.P99 <= before.P99 {
		t.Errorf("during p99 %v not elevated over before p99 %v", during.P99, before.P99)
	}
	// Tail re-convergence: after eviction the route holds only live
	// workers, so p99 returns to the healthy order of magnitude.
	if after.P99 > 2*before.P99 {
		t.Errorf("after p99 %v did not re-converge (before %v)", after.P99, before.P99)
	}

	// The dead worker is gone from the placement; the survivors remain.
	for _, w := range rep.Survivors {
		if w == rep.Killed {
			t.Errorf("killed worker %s still placed: %v", rep.Killed, rep.Survivors)
		}
	}
	if want := QuickChaos().Workers - 1; len(rep.Survivors) != want {
		t.Errorf("survivors = %v, want %d workers", rep.Survivors, want)
	}

	// The detector's log shows the death, and both fault instants are
	// marked for the Chrome trace.
	sawDead := false
	for _, tr := range rep.Transitions {
		if tr.Worker == rep.Killed && tr.To == healthd.StatusDead {
			sawDead = true
		}
	}
	if !sawDead {
		t.Errorf("no Dead transition for %s in %+v", rep.Killed, rep.Transitions)
	}
	if len(rep.Marks) < 2 {
		t.Fatalf("marks = %+v, want crash + evict", rep.Marks)
	}
	for i, want := range []string{"nic-crash:", "evict:"} {
		if !strings.HasPrefix(rep.Marks[i].Name, want) {
			t.Errorf("mark %d = %q, want prefix %q", i, rep.Marks[i].Name, want)
		}
	}
	if len(rep.Requests) == 0 {
		t.Error("no request traces collected")
	}

	if out := RenderChaos(rep); !strings.Contains(out, "availability") {
		t.Errorf("render missing header:\n%s", out)
	}
}

// TestChaosDeterministic asserts the whole experiment — fault
// schedule, detection, eviction, and every latency percentile — is a
// pure function of the seed.
func TestChaosDeterministic(t *testing.T) {
	cfg := Quick()
	a, err := Chaos(cfg, QuickChaos())
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	b, err := Chaos(cfg, QuickChaos())
	if err != nil {
		t.Fatalf("Chaos repeat: %v", err)
	}
	if a.KillAt != b.KillAt || a.EvictedAt != b.EvictedAt {
		t.Errorf("instants differ: %v/%v vs %v/%v", a.KillAt, a.EvictedAt, b.KillAt, b.EvictedAt)
	}
	if a.Failovers != b.Failovers {
		t.Errorf("failovers differ: %d vs %d", a.Failovers, b.Failovers)
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase counts differ: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa != pb {
			t.Errorf("phase %s differs:\n%+v\n%+v", pa.Name, pa, pb)
		}
	}
}
