package experiments

import (
	"strings"
	"testing"
	"time"
)

func smokeLambdaBench() LambdaBenchConfig {
	return LambdaBenchConfig{
		Duration:    30 * time.Millisecond,
		ImageWidth:  16,
		ImageHeight: 16,
	}
}

func TestLambdaBenchProducesEngineMatrix(t *testing.T) {
	rep, err := LambdaBench(smokeLambdaBench())
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads × 2 engines.
	if len(rep.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(rep.Results))
	}
	engines := map[string]int{}
	for _, r := range rep.Results {
		engines[r.Transport]++
		if r.Requests == 0 {
			t.Errorf("%s/%s: zero requests", r.Name, r.Transport)
		}
		if r.Errors != 0 {
			t.Errorf("%s/%s: %d errors", r.Name, r.Transport, r.Errors)
		}
		if r.ReqPerSec <= 0 {
			t.Errorf("%s/%s: req/s = %f", r.Name, r.Transport, r.ReqPerSec)
		}
	}
	if engines["interp"] != 3 || engines["compiled"] != 3 {
		t.Errorf("engine coverage: %v", engines)
	}
}

func TestRenderLambdaBench(t *testing.T) {
	rep, err := LambdaBench(smokeLambdaBench())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderLambdaBench(rep)
	for _, want := range []string{"workload", "speedup", "interp", "compiled", "web_server"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The speedup column must be populated for compiled rows.
	if !strings.Contains(out, "x\n") {
		t.Errorf("no speedup ratio rendered:\n%s", out)
	}
}
