package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/benchio"
	"lambdanic/internal/cluster"
	"lambdanic/internal/core"
	"lambdanic/internal/metrics"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/telemetry"
	"lambdanic/internal/tenant"
	"lambdanic/internal/workloads"
)

// The tenants experiment closes the multi-tenancy loop end to end in
// virtual time: an interactive tenant and a bursty batch tenant share
// one rack of worker NICs. Both tenants' lambdas are colocated on every
// NIC — multi-tenancy by time-sharing, not partitioning — with the NIC
// scheduler running tenant-weighted hierarchical WFQ and the gateway
// edge running per-tenant token-bucket admission on the simulation's
// virtual clock. Mid-run the batch tenant floods the rack far beyond
// its rate quota: admission sheds the overflow, the NIC scheduler keeps
// serving the interactive tenant's queue at its higher weight, and the
// telemetry plane's SLO tracker grades the interactive tenant's p99
// against the isolation bound throughout. The report buckets both
// tenants' requests into before/during/after phases around the burst,
// so the isolation claim — interactive p99 within bound during the
// burst, error-budget burn back to zero after — is checked against the
// same windows an operator would watch.

// TenantsConfig sizes the multi-tenant isolation experiment.
type TenantsConfig struct {
	// Workers is the rack's worker-NIC count (default 64). Each NIC is
	// down-binned to 1 island × 2 cores × 2 threads so tenant
	// contention is visible at sane request counts.
	Workers int
	// InteractiveRate is the interactive tenant's open-loop offered
	// load over the whole run (default 40,000 req/s).
	InteractiveRate float64
	// BurstRate is the batch tenant's offered load during the burst
	// (default 1,200,000 req/s — far beyond both its admission quota
	// and the rack's batch capacity).
	BurstRate float64
	// Duration is the virtual run length (default 300 ms).
	Duration time.Duration
	// BurstStart/BurstEnd bound the batch flood (defaults 60/180 ms).
	BurstStart, BurstEnd time.Duration
	// BatchSweeps sizes one batch request's EMEM scan (default 400
	// sweeps ≈ 320 µs of NPU time — ~100× an interactive request).
	BatchSweeps int
	// InteractiveWeight and BatchWeight are the tenants' WFQ weights
	// (defaults 8 and 1).
	InteractiveWeight, BatchWeight float64
	// BatchRatePerSec/BatchBurst are the batch tenant's admission
	// quota (defaults 900,000/s, burst 20,000).
	BatchRatePerSec, BatchBurst float64
	// SampleInterval is the SLO sampling period (default 10 ms; the
	// rolling window is 4 samples wide).
	SampleInterval time.Duration
	// IsolationP99 is the isolation bound: the interactive tenant's
	// p99 must stay below it in every phase (default 2 ms).
	IsolationP99 time.Duration
}

// DefaultTenants returns the full-size experiment (the 64-NIC rack).
func DefaultTenants() TenantsConfig {
	return TenantsConfig{
		Workers:           64,
		InteractiveRate:   40_000,
		BurstRate:         1_200_000,
		Duration:          300 * time.Millisecond,
		BurstStart:        60 * time.Millisecond,
		BurstEnd:          180 * time.Millisecond,
		BatchSweeps:       workloads.DefaultBatchSweeps,
		InteractiveWeight: 8,
		BatchWeight:       1,
		BatchRatePerSec:   900_000,
		BatchBurst:        20_000,
		SampleInterval:    10 * time.Millisecond,
		IsolationP99:      2 * time.Millisecond,
	}
}

// QuickTenants returns a reduced configuration for tests and smoke
// runs.
func QuickTenants() TenantsConfig {
	return TenantsConfig{
		Workers:           8,
		InteractiveRate:   20_000,
		BurstRate:         250_000,
		Duration:          150 * time.Millisecond,
		BurstStart:        40 * time.Millisecond,
		BurstEnd:          90 * time.Millisecond,
		BatchSweeps:       workloads.DefaultBatchSweeps,
		InteractiveWeight: 8,
		BatchWeight:       1,
		BatchRatePerSec:   120_000,
		BatchBurst:        2_000,
		SampleInterval:    5 * time.Millisecond,
		IsolationP99:      2 * time.Millisecond,
	}
}

func (c TenantsConfig) withDefaults() TenantsConfig {
	d := DefaultTenants()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.InteractiveRate <= 0 {
		c.InteractiveRate = d.InteractiveRate
	}
	if c.BurstRate <= 0 {
		c.BurstRate = d.BurstRate
	}
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	if c.BurstStart <= 0 {
		c.BurstStart = c.Duration / 5
	}
	if c.BurstEnd <= 0 {
		c.BurstEnd = c.Duration * 3 / 5
	}
	if c.BatchSweeps <= 0 {
		c.BatchSweeps = d.BatchSweeps
	}
	if c.InteractiveWeight <= 0 {
		c.InteractiveWeight = d.InteractiveWeight
	}
	if c.BatchWeight <= 0 {
		c.BatchWeight = d.BatchWeight
	}
	if c.BatchRatePerSec <= 0 {
		c.BatchRatePerSec = d.BatchRatePerSec
	}
	if c.BatchBurst <= 0 {
		c.BatchBurst = d.BatchBurst
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = d.SampleInterval
	}
	if c.IsolationP99 <= 0 {
		c.IsolationP99 = d.IsolationP99
	}
	return c
}

// testbed down-bins the rack's NICs to 4 NPU threads each; everything
// else (clock, memory latencies, link) is the paper's testbed.
func (c TenantsConfig) testbed(cfg Config) cluster.Testbed {
	tb := cfg.Testbed
	tb.NIC.Islands = 1
	tb.NIC.CoresPerIsland = 2
	tb.NIC.ThreadsPerCore = 2
	return tb
}

// Tenant names and SLO targets for the experiment.
const (
	tenantsInteractive  = "vip"
	tenantsBatch        = "bulk"
	tenantsAvailability = 0.999
	tenantsQuantile     = 0.99
)

// TenantPhaseStat is one tenant's traffic summary over one phase.
type TenantPhaseStat struct {
	Tenant string
	Phase  string
	Start  time.Duration
	End    time.Duration
	// Requests counts arrivals admitted into the rack; Shed counts
	// arrivals rejected by gateway admission; Errors counts admitted
	// requests that failed.
	Requests int
	Errors   int
	Shed     int
	P50, P99 time.Duration
}

// TenantsReport is the experiment's outcome.
type TenantsReport struct {
	// Phases: before/during/after the burst, per tenant, bucketed by
	// arrival time.
	Phases []TenantPhaseStat
	// Shed is the admission controller's total throttle count.
	Shed uint64
	// InteractiveCompleted/BatchCompleted are the NIC schedulers' own
	// per-tenant completion counters summed across the rack — the
	// device-side cross-check of the harness's sample counts.
	InteractiveCompleted, BatchCompleted uint64
	// IsolationP99 echoes the bound; DuringP99 is the interactive
	// tenant's p99 during the burst; Isolated is the verdict
	// (DuringP99 within bound AND final burn zero).
	IsolationP99 time.Duration
	DuringP99    time.Duration
	Isolated     bool
	// WorstBurn/FinalBurn are the interactive latency objective's
	// error-budget burn extremes from the SLO tracker.
	WorstBurn, FinalBurn float64
	// Executed / FinalClock / Domains are the determinism fingerprint:
	// Tenants and TenantsParallel produce identical values.
	Executed   uint64
	FinalClock time.Duration
	Domains    int
	// SLO is the interactive tenant's full error-budget timeline.
	SLO *telemetry.SLOReport
}

// tenantsPlane is the control-plane state shared by both topologies:
// the real workload manager with tenants registered and bound, the
// admission controller loaded with the batch tenant's quota, and the
// classifier/weights the NIC schedulers consume.
type tenantsPlane struct {
	web, batch    *workloads.Workload
	vipID, bulkID uint32
	tenantOf      func(lambdaID uint32) uint32
	weights       map[uint32]float64
	adm           *tenant.Admission
}

func newTenantsPlane(cfg Config, tc TenantsConfig) (*tenantsPlane, error) {
	mgr, err := core.NewManager(1, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	vip, err := mgr.RegisterTenant(tenant.Tenant{
		Name:   tenantsInteractive,
		Class:  tenant.ClassInteractive,
		Weight: tc.InteractiveWeight,
	})
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	bulk, err := mgr.RegisterTenant(tenant.Tenant{
		Name:   tenantsBatch,
		Class:  tenant.ClassBatch,
		Weight: tc.BatchWeight,
		Quota:  tenant.Quota{RatePerSec: tc.BatchRatePerSec, Burst: tc.BatchBurst},
	})
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	web := workloads.WebServer()
	batch := workloads.BatchSweeperVariant("batch_sweep", workloads.BatchSweepID, tc.BatchSweeps)
	webID, err := mgr.RegisterFor(tenantsInteractive, web)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	batchID, err := mgr.RegisterFor(tenantsBatch, batch)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	// Snapshot the binding into a plain map: the classifier runs on the
	// NIC hot path in every domain, so it must not take registry locks.
	byLambda := map[uint32]uint32{webID: vip.ID, batchID: bulk.ID}
	adm := tenant.NewAdmission()
	if err := adm.SetQuota(vip); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	if err := adm.SetQuota(bulk); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	return &tenantsPlane{
		web: web, batch: batch,
		vipID: vip.ID, bulkID: bulk.ID,
		tenantOf: func(lambdaID uint32) uint32 { return byLambda[lambdaID] },
		weights:  mgr.Tenants().Weights(),
		adm:      adm,
	}, nil
}

func (p *tenantsPlane) newNIC(s *sim.Sim, tb cluster.Testbed) (*backend.LambdaNIC, error) {
	b, err := backend.NewLambdaNICWithConfig(s, tb, nicsim.Config{
		Dispatch:      nicsim.DispatchTenantWFQ,
		TenantOf:      p.tenantOf,
		TenantWeights: p.weights,
	})
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	// Each NIC compiles its own firmware image so no executable state
	// is shared across parallel domains.
	if err := b.Deploy([]*workloads.Workload{p.web, p.batch}); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	return b, nil
}

// tenantsTopology is the seam between the harness and the rack — the
// same shape as the chaos topology: the control plane always lives on
// ctrl; the NICs either share that clock (Tenants) or run one domain
// each (TenantsParallel).
type tenantsTopology struct {
	ctrl     *sim.Sim
	route    func(name string, id uint32, payload []byte, done func(backend.Result))
	nic      func(name string) *nicsim.NIC
	run      func() error
	executed func() uint64
	clock    func() sim.Time
	domains  int
}

// Tenants runs the multi-tenant isolation experiment with the whole
// rack on one clock.
func Tenants(cfg Config, tc TenantsConfig) (*TenantsReport, error) {
	tc = tc.withDefaults()
	plane, err := newTenantsPlane(cfg, tc)
	if err != nil {
		return nil, err
	}
	tb := tc.testbed(cfg)
	names := chaosNames(tc.Workers)
	s := cfg.newSim()
	nics := make(map[string]*backend.LambdaNIC, tc.Workers)
	for _, name := range names {
		b, err := plane.newNIC(s, tb)
		if err != nil {
			return nil, err
		}
		nics[name] = b
	}
	topo := &tenantsTopology{
		ctrl: s,
		route: func(name string, id uint32, payload []byte, done func(backend.Result)) {
			nics[name].InvokeTraced(id, payload, nil, done)
		},
		nic:      func(name string) *nicsim.NIC { return nics[name].NIC() },
		run:      s.RunUntilIdle,
		executed: func() uint64 { return s.Executed },
		clock:    s.Now,
		domains:  1,
	}
	return tenantsRun(tc, plane, names, topo)
}

// TenantsParallel runs the same experiment with each worker NIC in its
// own simulation domain under the conservative parallel coordinator.
// Wire hops become cross-domain messages costing exactly one scheduled
// event each — the same count as the shared-clock path — so the report
// is bit-identical to Tenants.
func TenantsParallel(cfg Config, tc TenantsConfig) (*TenantsReport, error) {
	tc = tc.withDefaults()
	plane, err := newTenantsPlane(cfg, tc)
	if err != nil {
		return nil, err
	}
	tb := tc.testbed(cfg)
	names := chaosNames(tc.Workers)
	p := sim.NewParallel(tb.Link.OneWay(0))
	ctrl := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
	doms := make(map[string]*sim.Domain, tc.Workers)
	nics := make(map[string]*backend.LambdaNIC, tc.Workers)
	for _, name := range names {
		d := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
		b, err := plane.newNIC(d.Sim, tb)
		if err != nil {
			return nil, err
		}
		doms[name], nics[name] = d, b
	}
	topo := &tenantsTopology{
		ctrl: ctrl.Sim,
		route: func(name string, id uint32, payload []byte, done func(backend.Result)) {
			d, b := doms[name], nics[name]
			ctrl.Send(d.ID(), b.WireDelay(len(payload)), func() {
				b.InvokeDelivered(id, payload, nil, func(res backend.Result, back sim.Time) {
					d.Send(ctrl.ID(), back, func() { done(res) })
				})
			})
		},
		nic:      func(name string) *nicsim.NIC { return nics[name].NIC() },
		run:      p.RunUntilIdle,
		executed: p.Executed,
		clock:    p.Clock,
		domains:  1 + len(names),
	}
	return tenantsRun(tc, plane, names, topo)
}

// tenantsSample is one arrival for phase bucketing.
type tenantsSample struct {
	tenantID uint32
	start    sim.Time
	latency  time.Duration
	shed     bool
	failed   bool
}

// tenantsRun is the topology-independent harness: admission, load,
// SLO grading, and phase bucketing.
func tenantsRun(tc TenantsConfig, plane *tenantsPlane, names []string, topo *tenantsTopology) (*TenantsReport, error) {
	s := topo.ctrl
	end := sim.Time(tc.Duration)

	// The interactive tenant's SLO, graded on the control domain's
	// virtual clock every sampling interval.
	slo, err := telemetry.NewSLOTracker(
		telemetry.NewWindowed(telemetry.WindowConfig{
			Slots:        4,
			SlotDuration: tc.SampleInterval,
		}),
		telemetry.Objective{
			Name: "vip-availability", Kind: telemetry.ObjectiveAvailability,
			Target: tenantsAvailability,
		},
		telemetry.Objective{
			Name: "vip-p99", Kind: telemetry.ObjectiveLatency,
			Target: tenantsQuantile, Threshold: tc.IsolationP99,
		},
	)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	sloMeter := slo.Windowed()
	sloMeter.Stats(0)
	var sampleEv *sim.Event
	var sample func()
	sample = func() {
		slo.Sample(s.Now())
		if s.Now() < end {
			sampleEv = s.Reschedule(sampleEv, tc.SampleInterval)
		}
	}
	sampleEv = s.Schedule(tc.SampleInterval, sample)

	// Load: both tenants' arrival schedules are drawn up front from the
	// control domain's seeded source — interactive first, then the
	// burst — so the whole run is a pure function of the seed. Every
	// arrival passes gateway admission on the virtual clock before any
	// wire event is scheduled; shed requests never touch the rack.
	var samples []tenantsSample
	next := 0
	issue := func(wl *workloads.Workload, tenantID uint32, at sim.Time, i int) {
		payload := wl.MakeRequest(i)
		s.ScheduleAt(at, func() {
			start := s.Now()
			if err := plane.adm.Admit(tenantID, start); err != nil {
				samples = append(samples, tenantsSample{
					tenantID: tenantID, start: start, shed: true,
				})
				return
			}
			name := names[next%len(names)]
			next++
			topo.route(name, wl.ID, payload, func(res backend.Result) {
				lat := s.Now() - start
				if tenantID == plane.vipID {
					sloMeter.Observe(lat, res.Err != nil)
				}
				samples = append(samples, tenantsSample{
					tenantID: tenantID, start: start,
					latency: lat, failed: res.Err != nil,
				})
			})
		})
	}
	rng := s.Rand()
	at := sim.Time(0)
	for i := 0; at < end; i++ {
		issue(plane.web, plane.vipID, at, i)
		at += sim.Time(rng.ExpFloat64() / tc.InteractiveRate * float64(time.Second))
	}
	at = sim.Time(tc.BurstStart)
	for i := 0; at < sim.Time(tc.BurstEnd); i++ {
		issue(plane.batch, plane.bulkID, at, i)
		at += sim.Time(rng.ExpFloat64() / tc.BurstRate * float64(time.Second))
	}

	if err := topo.run(); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}

	rep := &TenantsReport{
		IsolationP99: tc.IsolationP99,
		Shed:         plane.adm.TotalShed(),
		Executed:     topo.executed(),
		FinalClock:   topo.clock(),
		Domains:      topo.domains,
	}
	for _, name := range names {
		rep.InteractiveCompleted += topo.nic(name).TenantCompleted(plane.vipID)
		rep.BatchCompleted += topo.nic(name).TenantCompleted(plane.bulkID)
	}
	sloReport := slo.Report()
	rep.SLO = &sloReport
	for _, sum := range sloReport.Summary {
		if sum.Name == "vip-p99" {
			rep.WorstBurn, rep.FinalBurn = sum.WorstBurnRate, sum.FinalBurnRate
		}
	}

	// Phase bucketing by arrival time, per tenant.
	bounds := []struct {
		name       string
		start, end sim.Time
	}{
		{"before", 0, sim.Time(tc.BurstStart)},
		{"during", sim.Time(tc.BurstStart), sim.Time(tc.BurstEnd)},
		{"after", sim.Time(tc.BurstEnd), end},
	}
	tenants := []struct {
		name string
		id   uint32
	}{
		{tenantsInteractive, plane.vipID},
		{tenantsBatch, plane.bulkID},
	}
	for _, tn := range tenants {
		for _, b := range bounds {
			var lat metrics.Sample
			phase := TenantPhaseStat{Tenant: tn.name, Phase: b.name, Start: b.start, End: b.end}
			for _, sm := range samples {
				if sm.tenantID != tn.id || sm.start < b.start || sm.start >= b.end {
					continue
				}
				if sm.shed {
					phase.Shed++
					continue
				}
				phase.Requests++
				if sm.failed {
					phase.Errors++
				} else {
					lat.AddDuration(sm.latency)
				}
			}
			phase.P50 = time.Duration(lat.P50() * float64(time.Second))
			phase.P99 = time.Duration(lat.P99() * float64(time.Second))
			rep.Phases = append(rep.Phases, phase)
			if tn.name == tenantsInteractive && b.name == "during" {
				rep.DuringP99 = phase.P99
			}
		}
	}
	rep.Isolated = rep.DuringP99 > 0 && rep.DuringP99 <= tc.IsolationP99 && rep.FinalBurn == 0
	return rep, nil
}

// Bench converts the report to the benchmark-artifact schema
// (BENCH_tenants.json): one row per tenant × phase.
func (r *TenantsReport) Bench() benchio.Report {
	rep := benchio.Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, p := range r.Phases {
		row := benchio.Result{
			Name:      p.Tenant + "/" + p.Phase,
			Transport: "nicsim",
			Mode:      "open",
			Requests:  p.Requests,
			Errors:    p.Errors,
			Shed:      p.Shed,
			P50Ns:     p.P50.Nanoseconds(),
			P99Ns:     p.P99.Nanoseconds(),
		}
		if d := (p.End - p.Start).Seconds(); d > 0 {
			row.ReqPerSec = float64(p.Requests) / d
		}
		rep.Results = append(rep.Results, row)
	}
	return rep
}

// RenderTenants prints the tenants report.
func RenderTenants(rep *TenantsReport) string {
	var b strings.Builder
	verdict := "VIOLATED"
	if rep.Isolated {
		verdict = "met"
	}
	fmt.Fprintf(&b, "Tenants: interactive p99 during burst %v (bound %v, %s); admission shed %d; burn worst %.2fx final %.2fx\n",
		rep.DuringP99, rep.IsolationP99, verdict, rep.Shed, rep.WorstBurn, rep.FinalBurn)
	fmt.Fprintf(&b, "  NIC completions: %s=%d %s=%d (%d domains, %d events)\n",
		tenantsInteractive, rep.InteractiveCompleted, tenantsBatch, rep.BatchCompleted,
		rep.Domains, rep.Executed)
	fmt.Fprintf(&b, "  %-6s %-7s %9s %7s %7s %11s %11s\n",
		"tenant", "phase", "requests", "errors", "shed", "p50", "p99")
	for _, p := range rep.Phases {
		fmt.Fprintf(&b, "  %-6s %-7s %9d %7d %7d %11v %11v\n",
			p.Tenant, p.Phase, p.Requests, p.Errors, p.Shed, p.P50, p.P99)
	}
	if rep.SLO != nil {
		for _, line := range strings.Split(strings.TrimRight(rep.SLO.Text(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}
