package experiments

import (
	"reflect"
	"strings"
	"testing"

	"lambdanic/internal/sim"
)

func skewQuickConfig(kernel sim.KernelKind) (Config, SkewConfig) {
	cfg := Quick()
	cfg.Kernel = kernel
	return cfg, QuickSkew()
}

func TestSkewQuick(t *testing.T) {
	cfg, sc := skewQuickConfig(sim.KernelLadder)
	rep, err := Skew(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(rep.Rows))
	}
	if !rep.Affine {
		t.Fatalf("affinity verdict not met:\n%s", RenderSkew(rep))
	}
	rr, pin, mig := rep.Row(SkewPolicyRR), rep.Row(SkewPolicyPinned), rep.Row(SkewPolicyMig)
	if rr == nil || pin == nil || mig == nil {
		t.Fatalf("missing policy row:\n%s", RenderSkew(rep))
	}
	// All three policies consumed the identical schedule.
	if rr.Requests != pin.Requests || rr.Requests != mig.Requests || rr.Requests == 0 {
		t.Errorf("request counts diverge: rr=%d pinned=%d mig=%d",
			rr.Requests, pin.Requests, mig.Requests)
	}
	if rr.Errors+pin.Errors+mig.Errors != 0 {
		t.Errorf("errors: rr=%d pinned=%d mig=%d", rr.Errors, pin.Errors, mig.Errors)
	}
	// The headline claims, individually.
	if mig.P99 >= rr.P99 {
		t.Errorf("pinned+mig p99 %v not below rr %v", mig.P99, rr.P99)
	}
	if mig.WarmRate <= rr.WarmRate {
		t.Errorf("pinned+mig warm rate %.3f not above rr %.3f", mig.WarmRate, rr.WarmRate)
	}
	// Affinity concentrates load; migration restores spread without
	// giving the warm hits back.
	if pin.Spread <= rr.Spread {
		t.Errorf("pinned spread %.2f not above rr %.2f — no hotspot to fix", pin.Spread, rr.Spread)
	}
	if mig.Spread >= pin.Spread {
		t.Errorf("migration did not improve spread: mig %.2f vs pinned %.2f", mig.Spread, pin.Spread)
	}
	if mig.Migrations == 0 {
		t.Error("pinned+mig applied no migrations under the flash crowd")
	}
	if rr.Migrations != 0 || pin.Migrations != 0 {
		t.Errorf("static policies migrated: rr=%d pinned=%d", rr.Migrations, pin.Migrations)
	}
	// Round-robin sprays flows, so its warm hits trail badly.
	if rr.WarmHits+rr.WarmMisses == 0 {
		t.Error("warm-state model inactive: no lookups recorded")
	}

	out := RenderSkew(rep)
	for _, want := range []string{"rr", "pinned+mig", "warm%", "spread", "met"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	bench := rep.Bench()
	if len(bench.Results) != 3 {
		t.Fatalf("bench rows = %d, want 3", len(bench.Results))
	}
	for _, r := range bench.Results {
		if !strings.HasPrefix(r.Name, "skew/") {
			t.Errorf("bench row name %q, want skew/<policy>", r.Name)
		}
		if r.P99Ns <= 0 || r.P999Ns < r.P99Ns {
			t.Errorf("%s: p99=%d p999=%d", r.Name, r.P99Ns, r.P999Ns)
		}
	}
}

func TestSkewScheduleDeterministic(t *testing.T) {
	cfg, sc := skewQuickConfig(sim.KernelLadder)
	a := skewSchedule(cfg, sc.withDefaults())
	b := skewSchedule(cfg, sc.withDefaults())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two schedule draws from the same seed diverged")
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c := skewSchedule(cfg2, sc.withDefaults())
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the same schedule")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	last := sim.Time(0)
	crowd := 0
	for i, ar := range a {
		if ar.flow == 0 {
			t.Fatalf("arrival %d has zero flow key", i)
		}
		if ar.at >= sim.Time(sc.CrowdStart) && ar.at < sim.Time(sc.CrowdEnd) {
			crowd++
		}
		if ar.at > last {
			last = ar.at
		}
	}
	if last >= sim.Time(sc.Duration)+sim.Time(sc.CrowdEnd) {
		t.Errorf("arrival beyond horizon: %v", last)
	}
	if crowd == 0 {
		t.Error("no arrivals in the flash-crowd window")
	}
}

func TestSkewSerialParallelIdentical(t *testing.T) {
	cfg, sc := skewQuickConfig(sim.KernelLadder)
	serial, err := Skew(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SkewParallel(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Domains != sc.Workers+1 {
		t.Errorf("parallel domains = %d, want %d", parallel.Domains, sc.Workers+1)
	}
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Errorf("serial and parallel runs diverged:\nserial:   %+v\nparallel: %+v",
			serial.Rows, parallel.Rows)
	}
	if serial.Affine != parallel.Affine {
		t.Errorf("verdicts diverged: serial=%v parallel=%v", serial.Affine, parallel.Affine)
	}
}

func TestSkewKernelsIdentical(t *testing.T) {
	cfgHeap, sc := skewQuickConfig(sim.KernelHeap)
	heap, err := Skew(cfgHeap, sc)
	if err != nil {
		t.Fatal(err)
	}
	cfgLadder, _ := skewQuickConfig(sim.KernelLadder)
	ladder, err := Skew(cfgLadder, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heap.Rows, ladder.Rows) {
		t.Errorf("heap and ladder kernels diverged:\nheap:   %+v\nladder: %+v",
			heap.Rows, ladder.Rows)
	}
}
