package experiments

import (
	"fmt"

	"lambdanic/internal/core"
	"lambdanic/internal/mcc"
	"lambdanic/internal/workloads"
)

// Figure9 compiles the paper's naive four-lambda program (two key-value
// clients, a web server, an image transformer; 8,902 instructions) and
// reports the instruction-count trajectory through the three
// target-specific optimizations (§6.4, Figure 9).
func Figure9(cfg Config) ([]mcc.PassResult, error) {
	set := cfg.set()
	naive, err := workloads.BuildNaiveProgram(set, workloads.NaiveProgramTarget)
	if err != nil {
		return nil, fmt.Errorf("figure9: %w", err)
	}
	_, results, err := mcc.Optimize(naive, mcc.AllPasses())
	if err != nil {
		return nil, fmt.Errorf("figure9: %w", err)
	}
	return results, nil
}

// Table4 models each backend's deployment artifact for the benchmark
// workload set and its startup pipeline (§6.4, Table 4).
func Table4(cfg Config) ([]Table4Row, error) {
	exe, _, err := workloads.CompileOptimized(cfg.set(), workloads.NaiveProgramTarget)
	if err != nil {
		return nil, fmt.Errorf("table4: %w", err)
	}
	instr := exe.StaticInstructions()
	kinds := []struct {
		id   BackendID
		kind core.BackendKind
	}{
		{BackendLambdaNIC, core.KindLambdaNIC},
		{BackendBareMetal, core.KindBareMetal},
		{BackendContainer, core.KindContainer},
	}
	var out []Table4Row
	for _, k := range kinds {
		a := core.BuildArtifact(k.kind, instr)
		out = append(out, Table4Row{
			Backend: k.id,
			SizeMiB: a.SizeMiB,
			Startup: a.StartupTime(),
		})
	}
	return out, nil
}
