package experiments

import (
	"reflect"
	"strings"
	"testing"

	"lambdanic/internal/placement"
	"lambdanic/internal/sim"
)

func boundaryQuickConfig(kernel sim.KernelKind) (Config, BoundaryConfig) {
	cfg := Quick()
	cfg.Kernel = kernel
	return cfg, QuickBoundary()
}

func TestBoundaryQuick(t *testing.T) {
	cfg, bc := boundaryQuickConfig(sim.KernelLadder)
	rep, err := Boundary(cfg, bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(rep.Rows))
	}
	if !rep.Pareto {
		t.Fatalf("Pareto verdict not met:\n%s", RenderBoundary(rep))
	}
	sn, sh, dyn := rep.Row(BoundaryPolicyNIC), rep.Row(BoundaryPolicyHost), rep.Row(BoundaryPolicyDyn)
	if sn == nil || sh == nil || dyn == nil {
		t.Fatalf("missing policy row:\n%s", RenderBoundary(rep))
	}
	// All three policies consumed the identical schedule, and the
	// simulated cluster served all of it.
	if sn.Requests != sh.Requests || sn.Requests != dyn.Requests || sn.Requests == 0 {
		t.Errorf("request counts diverge: nic=%d host=%d dyn=%d",
			sn.Requests, sh.Requests, dyn.Requests)
	}
	if sn.Errors+sh.Errors+dyn.Errors != 0 {
		t.Errorf("errors: nic=%d host=%d dyn=%d", sn.Errors, sh.Errors, dyn.Errors)
	}
	// The headline claims, individually. Cost: the dynamic policy's
	// NIC-core·time must be strictly below the always-on rack.
	if dyn.NICCoreSeconds >= sn.NICCoreSeconds {
		t.Errorf("dynamic cost %.4f core·s not below static-nic %.4f",
			dyn.NICCoreSeconds, sn.NICCoreSeconds)
	}
	if sh.NICCoreSeconds != 0 {
		t.Errorf("static-host burned NIC cores: %.4f", sh.NICCoreSeconds)
	}
	// Latency: at peak, the saturated static rack's tail must be far
	// above the dynamic policy's (the boundary re-split is what buys
	// the win, so the gap should be large, not marginal).
	if dyn.Phases[1].P99*2 > sn.Phases[1].P99 {
		t.Errorf("peak p99: dynamic %v not well below static-nic %v",
			dyn.Phases[1].P99, sn.Phases[1].P99)
	}
	// The serverful baseline collapses everywhere: its dispatch path
	// saturates three orders of magnitude below the offered rate.
	if sh.P99 < 10*sn.P99 {
		t.Errorf("static-host p99 %v suspiciously close to static-nic %v", sh.P99, sn.P99)
	}
	// Exactly one boundary move (the heavy sweeper leaves the NIC at
	// the morning ramp) and at least one scale-up + scale-down pair.
	if dyn.Migrations != 1 || len(dyn.Moves) != 1 {
		t.Errorf("migrations = %d (moves %d), want exactly 1:\n%s",
			dyn.Migrations, len(dyn.Moves), RenderBoundary(rep))
	}
	if len(dyn.Moves) == 1 {
		m := dyn.Moves[0]
		if m.Workload != "bnd_heavy" || m.From != placement.LocNIC || m.To != placement.LocHost {
			t.Errorf("move = %+v, want bnd_heavy NIC->HOST", m)
		}
	}
	if dyn.ScaleOps < 2 {
		t.Errorf("scale ops = %d, want >= 2 (up at the ramp, down after)", dyn.ScaleOps)
	}
	if sn.Migrations != 0 || sh.Migrations != 0 || sn.ScaleOps != 0 || sh.ScaleOps != 0 {
		t.Errorf("static policies ran the control loop: nic=%d/%d host=%d/%d",
			sn.Migrations, sn.ScaleOps, sh.Migrations, sh.ScaleOps)
	}

	out := RenderBoundary(rep)
	for _, want := range []string{"static-nic", "static-host", "dynamic", "core·ms", "Pareto met", "bnd_heavy NIC->HOST"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	bench := rep.Bench()
	if want := 3 * (1 + len(boundaryPhases)); len(bench.Results) != want {
		t.Fatalf("bench rows = %d, want %d", len(bench.Results), want)
	}
	for _, r := range bench.Results {
		if !strings.HasPrefix(r.Name, "boundary/") {
			t.Errorf("bench row name %q, want boundary/...", r.Name)
		}
		if r.P99Ns <= 0 || r.P999Ns < r.P99Ns {
			t.Errorf("%s: p99=%d p999=%d", r.Name, r.P99Ns, r.P999Ns)
		}
	}
}

func TestBoundaryScheduleDeterministic(t *testing.T) {
	cfg, bc := boundaryQuickConfig(sim.KernelLadder)
	bc = bc.withDefaults()
	a := boundarySchedule(cfg, bc)
	b := boundarySchedule(cfg, bc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two schedule draws from the same seed diverged")
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c := boundarySchedule(cfg2, bc)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the same schedule")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	// Phases are attributed by arrival time, every class appears, and
	// the crowd window carries visibly more web traffic than the rest
	// of the peak.
	classes := map[int]int{}
	phases := map[int]int{}
	horizon := sim.Time(bc.totalDur())
	crowdWeb, crowdSpan := 0, float64(bc.CrowdDur)
	lateWeb, lateSpan := 0, float64(bc.PeakDur-bc.CrowdDur)
	t1, crowdEnd := sim.Time(bc.TroughDur), sim.Time(bc.TroughDur)+sim.Time(bc.CrowdDur)
	for i := 1; i < len(a); i++ {
		if a[i].at < a[i-1].at {
			t.Fatalf("schedule out of order at %d", i)
		}
	}
	for _, ar := range a {
		if ar.at >= horizon {
			t.Fatalf("arrival beyond horizon: %v", ar.at)
		}
		classes[ar.class]++
		phases[ar.phase]++
		if ar.class == 0 && ar.at >= t1 && ar.at < crowdEnd {
			crowdWeb++
		}
		if ar.class == 0 && ar.at >= crowdEnd && ar.at < t1+sim.Time(bc.PeakDur) {
			lateWeb++
		}
	}
	for c := 0; c < 3; c++ {
		if classes[c] == 0 {
			t.Errorf("class %d has no arrivals", c)
		}
	}
	for p := range boundaryPhases {
		if phases[p] == 0 {
			t.Errorf("phase %s has no arrivals", boundaryPhases[p])
		}
	}
	if float64(crowdWeb)/crowdSpan <= float64(lateWeb)/lateSpan {
		t.Errorf("flash crowd invisible: %d web in crowd window vs %d after", crowdWeb, lateWeb)
	}
}

func TestBoundarySerialParallelIdentical(t *testing.T) {
	cfg, bc := boundaryQuickConfig(sim.KernelLadder)
	serial, err := Boundary(cfg, bc)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BoundaryParallel(cfg, bc)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Domains != bc.withDefaults().NICs+2 {
		t.Errorf("parallel domains = %d, want %d", parallel.Domains, bc.withDefaults().NICs+2)
	}
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Errorf("serial and parallel runs diverged:\nserial:   %+v\nparallel: %+v",
			serial.Rows, parallel.Rows)
	}
	if serial.Pareto != parallel.Pareto {
		t.Errorf("verdicts diverged: serial=%v parallel=%v", serial.Pareto, parallel.Pareto)
	}
}

func TestBoundaryKernelsIdentical(t *testing.T) {
	cfgHeap, bc := boundaryQuickConfig(sim.KernelHeap)
	heap, err := Boundary(cfgHeap, bc)
	if err != nil {
		t.Fatal(err)
	}
	cfgLadder, _ := boundaryQuickConfig(sim.KernelLadder)
	ladder, err := Boundary(cfgLadder, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heap.Rows, ladder.Rows) {
		t.Errorf("heap and ladder kernels diverged:\nheap:   %+v\nladder: %+v",
			heap.Rows, ladder.Rows)
	}
}
