package experiments

import (
	"strings"
	"testing"
)

func TestScaleOutNearLinear(t *testing.T) {
	points, err := ScaleOut(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Workers != 1 || points[2].Workers != 4 {
		t.Fatalf("worker counts wrong: %+v", points)
	}
	// Adding workers must increase aggregate throughput...
	if !(points[1].PerSecond > points[0].PerSecond && points[2].PerSecond > points[1].PerSecond) {
		t.Errorf("throughput not increasing: %+v", points)
	}
	// ...with reasonable scaling efficiency (link-bound workload).
	if points[2].Efficiency < 0.65 {
		t.Errorf("4-worker efficiency = %.2f, want >= 0.65", points[2].Efficiency)
	}
	out := RenderScaleOut(points)
	if !strings.Contains(out, "4 worker(s)") {
		t.Errorf("render:\n%s", out)
	}
}
