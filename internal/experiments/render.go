package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lambdanic/internal/mcc"
	"lambdanic/internal/metrics"
)

// This file renders experiment results as the text tables and series
// cmd/lnic-bench prints, mirroring the paper's presentation.

func dur(sec float64) string { return metrics.FormatSeconds(sec) }

// RenderTable1 prints the SmartNIC comparison.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: A comparison of various types of SmartNICs\n")
	fmt.Fprintf(&b, "  %-12s %-16s %-26s %s\n", "Type", "Programmability", "Performance", "Dev cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %-16s %-26s %s\n", r.Type, r.Programmability, r.Performance, r.DevelopmentCost)
	}
	return b.String()
}

// RenderFigure6 prints the isolation-latency series with their ECDFs
// summarized at key quantiles.
func RenderFigure6(series []LatencySeries) string {
	var b strings.Builder
	b.WriteString("Figure 6: latency of a single warm lambda in isolation (closed loop)\n")
	byWorkload := map[string][]LatencySeries{}
	var order []string
	for _, s := range series {
		if _, ok := byWorkload[s.Workload]; !ok {
			order = append(order, s.Workload)
		}
		byWorkload[s.Workload] = append(byWorkload[s.Workload], s)
	}
	for _, w := range order {
		fmt.Fprintf(&b, "  %s:\n", w)
		var nicMean float64
		for _, s := range byWorkload[w] {
			if s.Backend == BackendLambdaNIC {
				nicMean = s.Summary.Mean
			}
		}
		for _, s := range byWorkload[w] {
			speedup := ""
			if s.Backend != BackendLambdaNIC && nicMean > 0 {
				speedup = fmt.Sprintf("  (%0.0fx vs lambda-nic)", s.Summary.Mean/nicMean)
			}
			fmt.Fprintf(&b, "    %-18s mean=%-10s p50=%-10s p99=%-10s%s\n",
				s.Backend, dur(s.Summary.Mean), dur(s.Summary.P50), dur(s.Summary.P99), speedup)
		}
	}
	return b.String()
}

// RenderECDF prints an ECDF as value/fraction pairs (one series).
func RenderECDF(name string, pts []metrics.Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  ECDF %s:\n", name)
	for _, p := range pts {
		fmt.Fprintf(&b, "    %-12s %.3f\n", dur(p.Value), p.Frac)
	}
	return b.String()
}

// RenderFigure7 prints the throughput series.
func RenderFigure7(points []ThroughputPoint) string {
	var b strings.Builder
	b.WriteString("Figure 7: average throughput (req/s)\n")
	byWorkload := map[string][]ThroughputPoint{}
	var order []string
	for _, p := range points {
		if _, ok := byWorkload[p.Workload]; !ok {
			order = append(order, p.Workload)
		}
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	for _, w := range order {
		fmt.Fprintf(&b, "  %s:\n", w)
		pts := byWorkload[w]
		sort.SliceStable(pts, func(i, j int) bool {
			if pts[i].Threads != pts[j].Threads {
				return pts[i].Threads < pts[j].Threads
			}
			return pts[i].Backend < pts[j].Backend
		})
		for _, p := range pts {
			fmt.Fprintf(&b, "    %-18s threads=%-3d %12.0f req/s\n", p.Backend, p.Threads, p.PerSecond)
		}
	}
	return b.String()
}

// RenderFigure8Table2 prints the contention experiment.
func RenderFigure8Table2(results []ContentionResult) string {
	var b strings.Builder
	b.WriteString("Figure 8 / Table 2: three distinct web-server lambdas, round-robin requests\n")
	var nicMean float64
	for _, r := range results {
		if r.Backend == BackendLambdaNIC {
			nicMean = r.Summary.Mean
		}
	}
	for _, r := range results {
		slowdown := ""
		if r.Backend != BackendLambdaNIC && nicMean > 0 {
			slowdown = fmt.Sprintf("  (%0.0fx vs lambda-nic)", r.Summary.Mean/nicMean)
		}
		fmt.Fprintf(&b, "  %-18s mean=%-10s p99=%-10s throughput=%8.0f req/s%s\n",
			r.Backend, dur(r.Summary.Mean), dur(r.Summary.P99), r.PerSecond, slowdown)
	}
	return b.String()
}

// RenderTable3 prints resource utilization.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: additional resources for the image-transformer workload\n")
	fmt.Fprintf(&b, "  %-18s %14s %18s %16s\n", "Backend", "Host CPU (%)", "Host Memory (MiB)", "NIC Memory (MiB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %14.1f %18.1f %16.1f\n",
			r.Backend, r.Usage.HostCPUPercent, r.Usage.HostMemoryMiB, r.Usage.NICMemoryMiB)
	}
	return b.String()
}

// RenderTable4 prints artifact sizes and startup times.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: factors affecting startup times\n")
	fmt.Fprintf(&b, "  %-18s %18s %16s\n", "Backend", "Workload (MiB)", "Startup (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %18.1f %16.1f\n", r.Backend, r.SizeMiB, r.Startup.Seconds())
	}
	return b.String()
}

// RenderFigure9 prints the optimizer trajectory.
func RenderFigure9(results []mcc.PassResult) string {
	var b strings.Builder
	b.WriteString("Figure 9: effectiveness of target-specific optimizations\n")
	if len(results) == 0 {
		return b.String()
	}
	base := float64(results[0].Instructions)
	for _, r := range results {
		pct := 100 * (base - float64(r.Instructions)) / base
		fmt.Fprintf(&b, "  %-24s %6d instructions  (-%.2f%%)\n", r.Pass, r.Instructions, pct)
	}
	return b.String()
}

// FormatDuration renders a duration for reports.
func FormatDuration(d time.Duration) string { return d.Round(time.Microsecond).String() }
