package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/benchio"
	"lambdanic/internal/cluster"
	"lambdanic/internal/dispatch"
	"lambdanic/internal/healthd"
	"lambdanic/internal/metrics"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/workloads"
)

// The skew experiment measures what flow affinity buys under a skewed
// popularity distribution — and what it costs when a flash crowd makes
// one flow an elephant. A rack of worker NICs runs the web-server
// lambda with the per-core warm-state model enabled: a request whose
// flow key is still in its core's LRU skips the cold-start surcharge
// (match-table rules and SRAM-resident state already installed). Three
// dispatch policies consume the *identical* seeded Zipf arrival
// schedule — long-lived client flows, a fraction of one-shot flows,
// and a mid-run flash crowd hammering the hottest flows:
//
//	rr          round-robin: perfect load spread, zero affinity. Every
//	            flow's state is sprayed across the rack, so warm hits
//	            only happen by accident.
//	pinned      consistent-hash affinity: each flow sticks to its ring
//	            owner. Warm hits dominate, but the flash crowd piles
//	            onto the elephants' owners unchecked.
//	pinned+mig  affinity plus the rebalancer: a healthd detector smooths
//	            per-worker load (EWMA) on the virtual clock; when a
//	            worker runs hot beyond the imbalance ratio, only the
//	            top-k elephant flows (per-flow rate sketch) migrate to
//	            underloaded workers. Mice stay pinned and warm.
//
// The report compares p50/p99/p999, per-worker load spread, and warm-
// hit rate per policy; its fingerprint (event count, final clock) is
// bit-identical between Skew and SkewParallel and between sim kernels.

// Skew dispatch policy names (also the benchmark row names).
const (
	SkewPolicyRR     = "rr"
	SkewPolicyPinned = "pinned"
	SkewPolicyMig    = "pinned+mig"
)

// SkewConfig sizes the flow-affinity experiment.
type SkewConfig struct {
	// Workers is the rack size (default 16); each NIC is down-binned to
	// 1 island × 2 cores × 2 threads so contention is visible.
	Workers int
	// Flows is the long-lived client-flow population (default 128).
	Flows int
	// ZipfS is the popularity exponent across flows (default 1.1 — the
	// classic "90/10" web skew).
	ZipfS float64
	// OneShotFrac is the fraction of arrivals carrying a fresh,
	// never-repeated flow key (default 0.10) — traffic no warm state or
	// pin can help.
	OneShotFrac float64
	// Rate is the base open-loop arrival rate (default 800,000 req/s —
	// roughly 70% of the down-binned rack's round-robin capacity, so
	// cold-start work shows up as queueing).
	Rate float64
	// Duration is the virtual run length (default 250 ms).
	Duration time.Duration
	// CrowdStart/CrowdEnd bound the flash crowd (defaults 80/160 ms);
	// CrowdRate is its extra arrival rate (default 200,000 req/s),
	// spread uniformly over the CrowdFlows hottest flows (default 4).
	CrowdStart, CrowdEnd time.Duration
	CrowdRate            float64
	CrowdFlows           int
	// ServiceSweeps sizes one request's EMEM scan (default 12 sweeps —
	// a mid-weight interactive lambda, ~10 µs of NPU time), so flow
	// hotspots translate into real queueing.
	ServiceSweeps int
	// WarmFlows is each NPU core's warm-state LRU capacity (default 8);
	// ColdStartCycles is the miss surcharge (default 50,000 cycles —
	// ≈79 µs at the paper's 633 MHz clock).
	WarmFlows       int
	ColdStartCycles uint64
	// RebalanceEvery is the load-report + rebalance period (default
	// 2 ms); TopK bounds migrations per tick (default 8);
	// ImbalanceRatio is the overload threshold versus mean load
	// (default 1.3); LoadAlpha is the healthd EWMA coefficient
	// (default healthd.DefaultLoadAlpha).
	RebalanceEvery time.Duration
	TopK           int
	ImbalanceRatio float64
	LoadAlpha      float64
}

// DefaultSkew returns the full-size experiment.
func DefaultSkew() SkewConfig {
	return SkewConfig{
		Workers:         16,
		Flows:           128,
		ZipfS:           1.1,
		OneShotFrac:     0.10,
		Rate:            800_000,
		Duration:        250 * time.Millisecond,
		CrowdStart:      80 * time.Millisecond,
		CrowdEnd:        160 * time.Millisecond,
		CrowdRate:       200_000,
		CrowdFlows:      4,
		ServiceSweeps:   12,
		WarmFlows:       8,
		ColdStartCycles: 50_000,
		RebalanceEvery:  2 * time.Millisecond,
		TopK:            8,
		ImbalanceRatio:  1.3,
		LoadAlpha:       healthd.DefaultLoadAlpha,
	}
}

// QuickSkew returns a reduced configuration for tests and smoke runs.
func QuickSkew() SkewConfig {
	return SkewConfig{
		Workers:         8,
		Flows:           64,
		ZipfS:           1.1,
		OneShotFrac:     0.10,
		Rate:            400_000,
		Duration:        100 * time.Millisecond,
		CrowdStart:      30 * time.Millisecond,
		CrowdEnd:        60 * time.Millisecond,
		CrowdRate:       150_000,
		CrowdFlows:      2,
		ServiceSweeps:   12,
		WarmFlows:       8,
		ColdStartCycles: 50_000,
		RebalanceEvery:  2 * time.Millisecond,
		TopK:            8,
		ImbalanceRatio:  1.3,
		LoadAlpha:       healthd.DefaultLoadAlpha,
	}
}

func (c SkewConfig) withDefaults() SkewConfig {
	d := DefaultSkew()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.Flows <= 0 {
		c.Flows = d.Flows
	}
	if c.ZipfS <= 0 {
		c.ZipfS = d.ZipfS
	}
	if c.OneShotFrac < 0 || c.OneShotFrac >= 1 {
		c.OneShotFrac = d.OneShotFrac
	}
	if c.Rate <= 0 {
		c.Rate = d.Rate
	}
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	if c.CrowdStart <= 0 {
		c.CrowdStart = c.Duration * 1 / 3
	}
	if c.CrowdEnd <= 0 {
		c.CrowdEnd = c.Duration * 2 / 3
	}
	if c.CrowdRate <= 0 {
		c.CrowdRate = d.CrowdRate
	}
	if c.CrowdFlows <= 0 {
		c.CrowdFlows = d.CrowdFlows
	}
	if c.ServiceSweeps <= 0 {
		c.ServiceSweeps = d.ServiceSweeps
	}
	if c.WarmFlows <= 0 {
		c.WarmFlows = d.WarmFlows
	}
	if c.ColdStartCycles == 0 {
		c.ColdStartCycles = d.ColdStartCycles
	}
	if c.RebalanceEvery <= 0 {
		c.RebalanceEvery = d.RebalanceEvery
	}
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.ImbalanceRatio <= 0 {
		c.ImbalanceRatio = d.ImbalanceRatio
	}
	if c.LoadAlpha <= 0 {
		c.LoadAlpha = healthd.DefaultLoadAlpha
	}
	return c
}

// workload is the experiment's service lambda: an EMEM sweeper sized
// by ServiceSweeps, so per-request cost — and therefore hotspot
// queueing — is a config knob rather than a fixed constant.
func (c SkewConfig) workload() *workloads.Workload {
	return workloads.BatchSweeperVariant("skew_svc", workloads.BatchSweepID, c.ServiceSweeps)
}

// testbed down-bins the rack's NICs to 4 NPU threads each, as in the
// tenants experiment, so per-worker queueing shows at sane rates.
func (c SkewConfig) testbed(cfg Config) cluster.Testbed {
	tb := cfg.Testbed
	tb.NIC.Islands = 1
	tb.NIC.CoresPerIsland = 2
	tb.NIC.ThreadsPerCore = 2
	return tb
}

// SkewPolicyStat is one dispatch policy's outcome over the full run.
type SkewPolicyStat struct {
	Policy   string
	Requests int
	Errors   int
	// Migrations counts elephant-flow moves (pinned+mig only);
	// PinnedFlows is the standing pin count at run end.
	Migrations  int
	PinnedFlows int
	// Latency percentiles over successful requests.
	P50, P99, P999 time.Duration
	// Spread is max/mean of per-worker completion counts: 1.0 is a
	// perfectly even rack; higher means hot spots.
	Spread float64
	// Warm-state outcome summed across the rack's NICs.
	WarmHits, WarmMisses uint64
	WarmRate             float64
	// Executed / FinalClock fingerprint the policy's simulation run:
	// Skew and SkewParallel produce identical values.
	Executed   uint64
	FinalClock time.Duration
}

// SkewReport is the experiment's outcome.
type SkewReport struct {
	Rows []SkewPolicyStat
	// Domains is per policy run (1 serial; 1+Workers parallel).
	Domains int
	// Affine is the verdict: pinned+mig beats round-robin on p99 AND on
	// warm-hit rate.
	Affine bool
}

// Row returns the named policy's stats (nil if absent).
func (r *SkewReport) Row(policy string) *SkewPolicyStat {
	for i := range r.Rows {
		if r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// skewArrival is one scheduled request; the schedule is drawn up front
// from seeded generators so every policy, topology, and kernel consumes
// the exact same load.
type skewArrival struct {
	at   sim.Time
	flow uint64
	idx  int
}

// skewSchedule draws the base Zipf stream plus the flash crowd. All
// randomness comes from benchio's seeded Zipf generator — nothing
// depends on the simulator's RNG, so the schedule is one fixed function
// of the config.
func skewSchedule(cfg Config, sc SkewConfig) []skewArrival {
	seed := uint64(cfg.Seed)
	flowKey := func(rank int) uint64 {
		return dispatch.FlowKey(fmt.Sprintf("c%04d", rank), workloads.BatchSweepID)
	}

	var arrivals []skewArrival
	// Base stream: exponential interarrivals at Rate; each arrival draws
	// its flow rank from the Zipf; a OneShotFrac slice gets fresh keys.
	pop, err := benchio.NewZipf(sc.Flows, sc.ZipfS, seed)
	if err != nil {
		panic(err) // n ≥ 1 and s > 0 by withDefaults
	}
	end := sim.Time(sc.Duration)
	at := sim.Time(0)
	oneShots := 0
	for i := 0; at < end; i++ {
		flow := flowKey(pop.Next())
		if float64(pop.Uint64()>>11)/(1<<53) < sc.OneShotFrac {
			oneShots++
			flow = dispatch.FlowKey(fmt.Sprintf("one%06d", oneShots), workloads.BatchSweepID)
		}
		arrivals = append(arrivals, skewArrival{at: at, flow: flow, idx: i})
		u := float64(pop.Uint64()>>11) / (1 << 53)
		at += sim.Time(-math.Log(1-u) / sc.Rate * float64(time.Second))
	}
	// Flash crowd: an extra stream over [CrowdStart, CrowdEnd) hitting
	// the CrowdFlows hottest ranks uniformly — the elephants.
	crowd, err := benchio.NewZipf(sc.CrowdFlows, 0, seed^0xc0ffee)
	if err != nil {
		panic(err)
	}
	at = sim.Time(sc.CrowdStart)
	for i := len(arrivals); at < sim.Time(sc.CrowdEnd); i++ {
		arrivals = append(arrivals, skewArrival{at: at, flow: flowKey(crowd.Next()), idx: i})
		u := float64(crowd.Uint64()>>11) / (1 << 53)
		at += sim.Time(-math.Log(1-u) / sc.CrowdRate * float64(time.Second))
	}
	return arrivals
}

// skewDispatcher is one policy's routing brain at the gateway position.
type skewDispatcher interface {
	// observe feeds the arrival into rate tracking (before pick).
	observe(flow uint64)
	// pick returns the worker index for the flow.
	pick(flow uint64) int
	// tick consumes a smoothed load report and may migrate; returns the
	// number of migrations applied.
	tick(loads []dispatch.Load) int
	// pins reports standing migrations at run end.
	pins() int
}

type rrDispatch struct{ next, n int }

func (d *rrDispatch) observe(uint64) {}
func (d *rrDispatch) pick(uint64) int {
	w := d.next % d.n
	d.next++
	return w
}
func (d *rrDispatch) tick([]dispatch.Load) int { return 0 }
func (d *rrDispatch) pins() int                { return 0 }

type pinDispatch struct{ ring *dispatch.Ring }

func (d *pinDispatch) observe(uint64) {}
func (d *pinDispatch) pick(flow uint64) int {
	return d.ring.Pick(flow)
}
func (d *pinDispatch) tick([]dispatch.Load) int { return 0 }
func (d *pinDispatch) pins() int                { return 0 }

type migDispatch struct {
	ring   *dispatch.Ring
	sketch *dispatch.Sketch
	pinned map[uint64]int
	names  []string
	index  map[string]int
	topK   int
	ratio  float64
}

func newMigDispatch(names []string, seed uint64, topK int, ratio float64) *migDispatch {
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	return &migDispatch{
		ring:   dispatch.NewRing(names, seed, dispatch.DefaultVirtualNodes),
		sketch: dispatch.NewSketch(256),
		pinned: make(map[uint64]int),
		names:  names,
		index:  index,
		topK:   topK,
		ratio:  ratio,
	}
}

func (d *migDispatch) observe(flow uint64) { d.sketch.Observe(flow) }

func (d *migDispatch) pick(flow uint64) int {
	if w, ok := d.pinned[flow]; ok {
		return w
	}
	return d.ring.Pick(flow)
}

func (d *migDispatch) tick(loads []dispatch.Load) int {
	owner := func(flow uint64) string { return d.names[d.pick(flow)] }
	plan := dispatch.Plan(loads, d.sketch.TopK(d.topK), owner, d.ratio)
	applied := 0
	for _, m := range plan {
		to, ok := d.index[m.To]
		if !ok {
			continue
		}
		if d.ring.Pick(m.Flow) == to {
			delete(d.pinned, m.Flow) // back on its ring owner: just unpin
		} else {
			d.pinned[m.Flow] = to
		}
		applied++
	}
	d.sketch.Advance()
	return applied
}

func (d *migDispatch) pins() int { return len(d.pinned) }

// skewTopology is the seam between the harness and one policy's rack —
// the tenants-experiment shape, plus the flow key on the route.
type skewTopology struct {
	ctrl     *sim.Sim
	route    func(name string, id uint32, payload []byte, flow uint64, done func(backend.Result))
	nic      func(name string) *nicsim.NIC
	run      func() error
	executed func() uint64
	clock    func() sim.Time
	domains  int
}

func skewNIC(cfg Config, sc SkewConfig, s *sim.Sim, web *workloads.Workload) (*backend.LambdaNIC, error) {
	b, err := backend.NewLambdaNICWithConfig(s, sc.testbed(cfg), nicsim.Config{
		Dispatch:        nicsim.DispatchUniform,
		WarmFlows:       sc.WarmFlows,
		ColdStartCycles: sc.ColdStartCycles,
	})
	if err != nil {
		return nil, fmt.Errorf("skew: %w", err)
	}
	if err := b.Deploy([]*workloads.Workload{web}); err != nil {
		return nil, fmt.Errorf("skew: %w", err)
	}
	return b, nil
}

func (c SkewConfig) dispatcher(policy string, names []string, seed uint64) skewDispatcher {
	switch policy {
	case SkewPolicyRR:
		return &rrDispatch{n: len(names)}
	case SkewPolicyPinned:
		return &pinDispatch{ring: dispatch.NewRing(names, seed, dispatch.DefaultVirtualNodes)}
	default:
		return newMigDispatch(names, seed, c.TopK, c.ImbalanceRatio)
	}
}

// Skew runs all three policies with each rack on one clock.
func Skew(cfg Config, sc SkewConfig) (*SkewReport, error) {
	sc = sc.withDefaults()
	sched := skewSchedule(cfg, sc)
	names := chaosNames(sc.Workers)
	rep := &SkewReport{Domains: 1}
	for _, policy := range []string{SkewPolicyRR, SkewPolicyPinned, SkewPolicyMig} {
		web := sc.workload()
		s := cfg.newSim()
		nics := make(map[string]*backend.LambdaNIC, sc.Workers)
		for _, name := range names {
			b, err := skewNIC(cfg, sc, s, web)
			if err != nil {
				return nil, err
			}
			nics[name] = b
		}
		topo := &skewTopology{
			ctrl: s,
			route: func(name string, id uint32, payload []byte, flow uint64, done func(backend.Result)) {
				nics[name].InvokeFlow(id, payload, flow, nil, done)
			},
			nic:      func(name string) *nicsim.NIC { return nics[name].NIC() },
			run:      s.RunUntilIdle,
			executed: func() uint64 { return s.Executed },
			clock:    s.Now,
			domains:  1,
		}
		row, err := skewRun(cfg, sc, web, names, topo, sched, policy)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Affine = skewVerdict(rep)
	return rep, nil
}

// SkewParallel runs the same three racks with each worker NIC in its
// own simulation domain under the conservative parallel coordinator;
// wire hops cost exactly one scheduled event each, as in the serial
// path, so the report is bit-identical to Skew.
func SkewParallel(cfg Config, sc SkewConfig) (*SkewReport, error) {
	sc = sc.withDefaults()
	sched := skewSchedule(cfg, sc)
	names := chaosNames(sc.Workers)
	tb := sc.testbed(cfg)
	rep := &SkewReport{Domains: 1 + sc.Workers}
	for _, policy := range []string{SkewPolicyRR, SkewPolicyPinned, SkewPolicyMig} {
		web := sc.workload()
		p := sim.NewParallel(tb.Link.OneWay(0))
		ctrl := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
		doms := make(map[string]*sim.Domain, sc.Workers)
		nics := make(map[string]*backend.LambdaNIC, sc.Workers)
		for _, name := range names {
			d := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
			b, err := skewNIC(cfg, sc, d.Sim, web)
			if err != nil {
				return nil, err
			}
			doms[name], nics[name] = d, b
		}
		topo := &skewTopology{
			ctrl: ctrl.Sim,
			route: func(name string, id uint32, payload []byte, flow uint64, done func(backend.Result)) {
				d, b := doms[name], nics[name]
				ctrl.Send(d.ID(), b.WireDelay(len(payload)), func() {
					b.InvokeFlowDelivered(id, payload, flow, nil, func(res backend.Result, back sim.Time) {
						d.Send(ctrl.ID(), back, func() { done(res) })
					})
				})
			},
			nic:      func(name string) *nicsim.NIC { return nics[name].NIC() },
			run:      p.RunUntilIdle,
			executed: p.Executed,
			clock:    p.Clock,
			domains:  1 + len(names),
		}
		row, err := skewRun(cfg, sc, web, names, topo, sched, policy)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Affine = skewVerdict(rep)
	return rep, nil
}

// skewRun is the topology-independent harness for one policy: issue the
// shared schedule through the policy's dispatcher, feed the healthd
// detector smoothed load on the virtual clock, rebalance on ticks, and
// summarize.
func skewRun(cfg Config, sc SkewConfig, web *workloads.Workload, names []string, topo *skewTopology, sched []skewArrival, policy string) (SkewPolicyStat, error) {
	s := topo.ctrl
	end := sim.Time(sc.Duration)
	disp := sc.dispatcher(policy, names, uint64(cfg.Seed))

	// Load reports ride the same detector the live deployment's
	// rebalancer consumes: per-worker in-flight counts sampled at tick
	// instants, EWMA-smoothed so a single burst doesn't whipsaw pins.
	det := healthd.NewDetector(healthd.Config{
		Interval:  sc.RebalanceEvery,
		LoadAlpha: sc.LoadAlpha,
	})
	inflight := make([]int, len(names))
	completed := make([]uint64, len(names))
	var (
		lat        metrics.Sample
		errs       int
		migrations int
		seq        uint64
		tickEv     *sim.Event
	)
	var tick func()
	tick = func() {
		seq++
		now := time.Duration(s.Now())
		for i, name := range names {
			det.Observe(healthd.Heartbeat{Worker: name, Seq: seq, Load: inflight[i]}, now)
		}
		snap := det.Snapshot(now)
		loads := make([]dispatch.Load, 0, len(snap))
		for _, wh := range snap {
			loads = append(loads, dispatch.Load{Worker: wh.Worker, Load: wh.SmoothedLoad})
		}
		migrations += disp.tick(loads)
		if s.Now() < end {
			tickEv = s.Reschedule(tickEv, sim.Time(sc.RebalanceEvery))
		}
	}
	tickEv = s.Schedule(sim.Time(sc.RebalanceEvery), tick)

	for _, a := range sched {
		a := a
		payload := web.MakeRequest(a.idx)
		s.ScheduleAt(a.at, func() {
			disp.observe(a.flow)
			w := disp.pick(a.flow)
			inflight[w]++
			start := s.Now()
			topo.route(names[w], web.ID, payload, a.flow, func(res backend.Result) {
				inflight[w]--
				completed[w]++
				if res.Err != nil {
					errs++
				} else {
					lat.AddDuration(time.Duration(s.Now() - start))
				}
			})
		})
	}
	if err := topo.run(); err != nil {
		return SkewPolicyStat{}, fmt.Errorf("skew/%s: %w", policy, err)
	}

	row := SkewPolicyStat{
		Policy:      policy,
		Requests:    len(sched),
		Errors:      errs,
		Migrations:  migrations,
		PinnedFlows: disp.pins(),
		P50:         time.Duration(lat.P50() * float64(time.Second)),
		P99:         time.Duration(lat.P99() * float64(time.Second)),
		P999:        time.Duration(lat.P999() * float64(time.Second)),
		Executed:    topo.executed(),
		FinalClock:  time.Duration(topo.clock()),
	}
	var sum, max uint64
	for _, c := range completed {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum > 0 {
		row.Spread = float64(max) * float64(len(names)) / float64(sum)
	}
	for _, name := range names {
		st := topo.nic(name).Stats()
		row.WarmHits += st.WarmHits
		row.WarmMisses += st.WarmMisses
	}
	if total := row.WarmHits + row.WarmMisses; total > 0 {
		row.WarmRate = float64(row.WarmHits) / float64(total)
	}
	return row, nil
}

// skewVerdict: affinity pays iff pinned+mig beats round-robin on both
// tail latency and warm-hit rate.
func skewVerdict(rep *SkewReport) bool {
	rr, mig := rep.Row(SkewPolicyRR), rep.Row(SkewPolicyMig)
	if rr == nil || mig == nil {
		return false
	}
	return mig.P99 > 0 && mig.P99 < rr.P99 && mig.WarmRate > rr.WarmRate
}

// Bench converts the report to the benchmark-artifact schema
// (BENCH_skew.json): one row per policy, with virtual-clock
// percentiles suitable for benchio.GuardLatency.
func (r *SkewReport) Bench() benchio.Report {
	rep := benchio.Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, row := range r.Rows {
		res := benchio.Result{
			Name:      "skew/" + row.Policy,
			Transport: "nicsim",
			Mode:      "open",
			Requests:  row.Requests,
			Errors:    row.Errors,
			P50Ns:     row.P50.Nanoseconds(),
			P99Ns:     row.P99.Nanoseconds(),
			P999Ns:    row.P999.Nanoseconds(),
		}
		if d := row.FinalClock.Seconds(); d > 0 {
			res.ReqPerSec = float64(row.Requests) / d
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// RenderSkew prints the skew report.
func RenderSkew(rep *SkewReport) string {
	var b strings.Builder
	verdict := "NOT MET"
	if rep.Affine {
		verdict = "met"
	}
	fmt.Fprintf(&b, "Skew: flow affinity + elephant migration vs round-robin (%s)\n", verdict)
	fmt.Fprintf(&b, "  %-10s %9s %7s %9s %9s %9s %7s %6s %5s %5s\n",
		"policy", "requests", "errors", "p50", "p99", "p999", "spread", "warm%", "mig", "pins")
	for _, row := range rep.Rows {
		fmt.Fprintf(&b, "  %-10s %9d %7d %9v %9v %9v %7.2f %5.1f%% %5d %5d\n",
			row.Policy, row.Requests, row.Errors, row.P50, row.P99, row.P999,
			row.Spread, 100*row.WarmRate, row.Migrations, row.PinnedFlows)
	}
	if len(rep.Rows) > 0 {
		fmt.Fprintf(&b, "  fingerprint: %d domains", rep.Domains)
		for _, row := range rep.Rows {
			fmt.Fprintf(&b, " %s=%d@%v", row.Policy, row.Executed, row.FinalClock)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
