package experiments

import (
	"fmt"
	"strings"
	"time"

	"lambdanic/internal/metrics"
	"lambdanic/internal/sim"
	"lambdanic/internal/telemetry"
	"lambdanic/internal/trace"
	"lambdanic/internal/workloads"
)

// LoadCurveObjective is the latency SLO each load point is graded
// against: 99% of requests inside 1 ms. λ-NIC holds it across the
// whole sweep; bare metal blows through it once offered load passes
// its dispatch knee — the hockey stick restated in error-budget terms.
var LoadCurveObjective = telemetry.Objective{
	Name:      "p99-latency",
	Kind:      telemetry.ObjectiveLatency,
	Target:    0.99,
	Threshold: time.Millisecond,
}

// LoadPoint is one offered-load measurement on a latency-vs-load curve.
type LoadPoint struct {
	Backend    BackendID
	OfferedRPS float64
	P50, P99   float64 // seconds
	Errors     int
	// GoodFrac and BurnRate grade the point against LoadCurveObjective;
	// SLOMet reports whether the objective held at this offered load.
	GoodFrac float64
	BurnRate float64
	SLOMet   bool
}

// gradeLoadPoint fills the SLO columns from the point's latency sample.
func (p *LoadPoint) gradeLoadPoint(lat *metrics.Sample) {
	o := LoadCurveObjective
	p.GoodFrac = lat.FracAtOrBelow(o.Threshold.Seconds())
	p.BurnRate = (1 - p.GoodFrac) / (1 - o.Target)
	p.SLOMet = p.GoodFrac >= o.Target
}

// LoadLatencyCurve sweeps offered load (open-loop Poisson arrivals)
// against the web-server lambda on λ-NIC and the bare-metal backend and
// reports tail latency at each point — the hockey-stick view of the
// paper's claim that λ-NIC "can run to completion without degradation
// in performance ... even at the tail" (§4.2.1 D1). Bare metal's knee
// appears near its serialized dispatch capacity (~2 kreq/s); λ-NIC's
// curve stays flat through the entire sweep.
func LoadLatencyCurve(cfg Config) ([]LoadPoint, error) {
	web := workloads.WebServer()
	rates := []float64{200, 500, 1000, 1500, 1800, 2500}
	requests := cfg.Fig7Requests / 2
	if requests < 200 {
		requests = 200
	}
	var out []LoadPoint
	for _, bid := range []BackendID{BackendLambdaNIC, BackendBareMetal} {
		for _, rate := range rates {
			s, b, err := cfg.newBackend(bid, cfg.set())
			if err != nil {
				return nil, err
			}
			res, err := trace.OpenLoop{
				RatePerSec: rate,
				Requests:   requests,
				Warmup:     cfg.Warmup,
				Gen:        trace.Fixed(web.ID, web.MakeRequest),
			}.Run(s, b)
			if err != nil {
				return nil, fmt.Errorf("loadcurve %s@%.0f: %w", bid, rate, err)
			}
			pt := LoadPoint{
				Backend:    bid,
				OfferedRPS: rate,
				P50:        res.Latency.Quantile(0.50),
				P99:        res.Latency.Quantile(0.99),
				Errors:     res.Errors,
			}
			pt.gradeLoadPoint(&res.Latency)
			out = append(out, pt)
		}
	}
	return out, nil
}

// LoadLatencyCurveParallel computes the same sweep with every
// (backend, rate) point in its own simulation domain, run concurrently
// by an independent sim.Parallel group. Each point's simulation is
// seeded and driven exactly as in LoadLatencyCurve, so the output is
// bitwise identical to the serial sweep — the points were always
// independent simulations; this just stops running them one at a time.
func LoadLatencyCurveParallel(cfg Config) ([]LoadPoint, error) {
	web := workloads.WebServer()
	rates := []float64{200, 500, 1000, 1500, 1800, 2500}
	requests := cfg.Fig7Requests / 2
	if requests < 200 {
		requests = 200
	}
	backends := []BackendID{BackendLambdaNIC, BackendBareMetal}
	p := sim.NewParallel(0)
	out := make([]LoadPoint, 0, len(backends)*len(rates))
	results := make([]*trace.Result, 0, len(backends)*len(rates))
	for _, bid := range backends {
		for _, rate := range rates {
			d := p.NewDomainKernel(cfg.Seed, cfg.Kernel)
			b, err := cfg.newBackendOn(d.Sim, bid, cfg.set())
			if err != nil {
				return nil, err
			}
			res, err := trace.OpenLoop{
				RatePerSec: rate,
				Requests:   requests,
				Warmup:     cfg.Warmup,
				Gen:        trace.Fixed(web.ID, web.MakeRequest),
			}.Start(d.Sim, b)
			if err != nil {
				return nil, fmt.Errorf("loadcurve %s@%.0f: %w", bid, rate, err)
			}
			results = append(results, res)
			out = append(out, LoadPoint{Backend: bid, OfferedRPS: rate})
		}
	}
	if err := p.RunUntilIdle(); err != nil {
		return nil, err
	}
	for i, res := range results {
		out[i].P50 = res.Latency.Quantile(0.50)
		out[i].P99 = res.Latency.Quantile(0.99)
		out[i].Errors = res.Errors
		out[i].gradeLoadPoint(&res.Latency)
	}
	return out, nil
}

// RenderLoadCurve prints the latency-vs-load sweep.
func RenderLoadCurve(points []LoadPoint) string {
	var b strings.Builder
	b.WriteString("Latency vs offered load (open-loop Poisson, web server)\n")
	fmt.Fprintf(&b, "  SLO: %g%% of requests ≤ %s\n",
		LoadCurveObjective.Target*100, LoadCurveObjective.Threshold)
	last := BackendID("")
	for _, p := range points {
		if p.Backend != last {
			fmt.Fprintf(&b, "  %s:\n", p.Backend)
			last = p.Backend
		}
		met := "met"
		if !p.SLOMet {
			met = "VIOLATED"
		}
		fmt.Fprintf(&b, "    %7.0f req/s  p50=%-10s p99=%-10s burn=%6.2fx  %s\n",
			p.OfferedRPS, metrics.FormatSeconds(p.P50), metrics.FormatSeconds(p.P99),
			p.BurnRate, met)
	}
	return b.String()
}
