// Package metrics collects latency and throughput statistics for the
// experiment harness: empirical CDFs, quantiles, and summary moments as
// reported in the paper's Figures 6 and 8 and the throughput tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates scalar observations (latencies in seconds, counts,
// sizes). The zero value is ready to use. Sample is not safe for
// concurrent use; in simulations a single event-loop goroutine owns it.
type Sample struct {
	values []float64
	sorted bool
	sum    float64
	sumSq  float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
	s.sum += v
	s.sumSq += v * v
}

// AddDuration records a latency observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Stddev returns the population standard deviation, or 0 for fewer than
// two observations.
func (s *Sample) Stddev() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	mean := s.sum / n
	variance := s.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against floating-point cancellation
	}
	return math.Sqrt(variance)
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	s.ensureSorted()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	s.ensureSorted()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) using linear
// interpolation between order statistics, or 0 for an empty sample.
func (s *Sample) Quantile(p float64) float64 {
	s.ensureSorted()
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 1 {
		return s.values[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// P50, P99, and P999 are the quantiles the paper reports at the tail.
func (s *Sample) P50() float64  { return s.Quantile(0.50) }
func (s *Sample) P99() float64  { return s.Quantile(0.99) }
func (s *Sample) P999() float64 { return s.Quantile(0.999) }

func (s *Sample) ensureSorted() {
	if s.sorted {
		return
	}
	sort.Float64s(s.values)
	s.sorted = true
}

// FracAtOrBelow returns the exact fraction of observations ≤ v — the
// good fraction of a latency objective. An empty sample reports 1 (no
// traffic breaches nothing).
func (s *Sample) FracAtOrBelow(v float64) float64 {
	if len(s.values) == 0 {
		return 1
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.values, v)
	// SearchFloat64s finds the first index ≥ v; walk past equal values
	// so the bound is inclusive.
	for i < len(s.values) && s.values[i] == v {
		i++
	}
	return float64(i) / float64(len(s.values))
}

// Point is one step of an empirical CDF: Frac of observations are ≤
// Value.
type Point struct {
	Value float64
	Frac  float64
}

// ECDF returns the empirical CDF evaluated at up to points evenly spaced
// positions in rank order. points ≤ 0 yields one point per observation.
func (s *Sample) ECDF(points int) []Point {
	s.ensureSorted()
	n := len(s.values)
	if n == 0 {
		return nil
	}
	if points <= 0 || points > n {
		points = n
	}
	out := make([]Point, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * n / points // 1-based rank of this step
		out = append(out, Point{
			Value: s.values[idx-1],
			Frac:  float64(idx) / float64(n),
		})
	}
	return out
}

// Summary is a compact distribution description used in experiment
// reports.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary from the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Stddev: s.Stddev(),
		Min:    s.Min(),
		P50:    s.Quantile(0.50),
		P90:    s.Quantile(0.90),
		P99:    s.Quantile(0.99),
		Max:    s.Max(),
	}
}

// String renders the summary with latency-style units (seconds in,
// human-readable durations out).
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		s.N, FormatSeconds(s.Mean), FormatSeconds(s.P50),
		FormatSeconds(s.P99), FormatSeconds(s.Max))
}

// FormatSeconds renders a duration given in seconds with an appropriate
// unit, e.g. "1.24ms" or "870ns".
func FormatSeconds(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Nanosecond).String()
}

// Throughput measures completed operations over a virtual-time window.
type Throughput struct {
	Completed uint64
	Start     time.Duration
	End       time.Duration
}

// PerSecond returns the completion rate in operations per second of
// virtual time, or 0 if the window is empty.
func (t Throughput) PerSecond() float64 {
	window := (t.End - t.Start).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(t.Completed) / window
}
