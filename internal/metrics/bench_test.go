package metrics

import (
	"math/rand"
	"testing"
)

func BenchmarkSampleAddAndQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var s Sample
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
		if i%1000 == 999 {
			_ = s.Quantile(0.99)
		}
	}
}

func BenchmarkECDF(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var s Sample
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.ECDF(40); len(pts) != 40 {
			b.Fatal("bad ecdf")
		}
	}
}
