package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample must report zeros")
	}
	if s.Quantile(0.5) != 0 {
		t.Error("empty sample quantile must be 0")
	}
	if s.ECDF(10) != nil {
		t.Error("empty sample ECDF must be nil")
	}
}

func TestMoments(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Stddev(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var s Sample
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20}, {-1, 10}, {2, 40},
	}
	for _, tt := range tests {
		if got := s.Quantile(tt.p); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestAddAfterQuantileKeepsSorted(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Quantile(0.5) // forces sort
	s.Add(0)            // must invalidate sorted flag
	if got := s.Min(); got != 0 {
		t.Errorf("Min after late Add = %v, want 0", got)
	}
}

func TestECDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	pts := s.ECDF(10)
	if len(pts) != 10 {
		t.Fatalf("len(ECDF) = %d, want 10", len(pts))
	}
	if pts[len(pts)-1].Frac != 1.0 {
		t.Errorf("final Frac = %v, want 1.0", pts[len(pts)-1].Frac)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Frac <= pts[i-1].Frac {
			t.Fatalf("ECDF not monotone at %d: %+v", i, pts)
		}
	}
	// Values should correspond to deciles of 1..100.
	if pts[0].Value != 10 || pts[4].Value != 50 {
		t.Errorf("decile values = %v, %v; want 10, 50", pts[0].Value, pts[4].Value)
	}
}

func TestECDFFullResolution(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	pts := s.ECDF(0)
	if len(pts) != 3 {
		t.Fatalf("len = %d, want 3", len(pts))
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Errorf("full ECDF values wrong: %+v", pts)
	}
}

func TestECDFMoreRequestedThanObservations(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	pts := s.ECDF(100)
	if len(pts) != 2 {
		t.Fatalf("len = %d, want clamped to 2", len(pts))
	}
}

func TestECDFProperty(t *testing.T) {
	// Property: for any sample, ECDF fractions are nondecreasing in
	// (0, 1] and values are nondecreasing.
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		pts := s.ECDF(0)
		prevFrac, prevVal := 0.0, math.Inf(-1)
		for _, p := range pts {
			if p.Frac <= prevFrac || p.Frac > 1 || p.Value < prevVal {
				return false
			}
			prevFrac, prevVal = p.Frac, p.Value
		}
		return prevFrac == 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		p, q := float64(a)/255, float64(b)/255
		if p > q {
			p, q = q, p
		}
		return s.Quantile(p) <= s.Quantile(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64())
	}
	sum := s.Summarize()
	if sum.N != 10000 {
		t.Errorf("N = %d", sum.N)
	}
	if !almostEqual(sum.Mean, 0.5, 0.02) {
		t.Errorf("Mean = %v, want ~0.5", sum.Mean)
	}
	if !almostEqual(sum.P50, 0.5, 0.02) || !almostEqual(sum.P99, 0.99, 0.02) {
		t.Errorf("quantiles off: p50=%v p99=%v", sum.P50, sum.P99)
	}
	if sum.String() == "" {
		t.Error("String() empty")
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Mean(); !almostEqual(got, 0.0015, 1e-12) {
		t.Errorf("Mean = %v, want 0.0015", got)
	}
}

func TestFormatSeconds(t *testing.T) {
	tests := []struct {
		sec  float64
		want string
	}{
		{0.0015, "1.5ms"},
		{0.00000087, "870ns"},
		{2, "2s"},
	}
	for _, tt := range tests {
		if got := FormatSeconds(tt.sec); got != tt.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", tt.sec, got, tt.want)
		}
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Completed: 500, Start: 0, End: 2 * time.Second}
	if got := tp.PerSecond(); !almostEqual(got, 250, 1e-9) {
		t.Errorf("PerSecond = %v, want 250", got)
	}
	empty := Throughput{Completed: 10}
	if empty.PerSecond() != 0 {
		t.Error("empty window must yield 0")
	}
}
