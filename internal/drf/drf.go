// Package drf implements Dominant Resource Fairness (Ghodsi et al.,
// NSDI 2011 — the paper's reference [61]). λ-NIC names DRF as the
// future-work resource-allocation mechanism for sharing NIC resources
// (NPU threads, memory, bandwidth) across lambdas (§4.2.1 D1: "We
// leave it as future work to explore more sophisticated resource-
// allocation mechanisms (e.g., DRF)").
//
// The allocator follows the progressive-filling formulation: repeatedly
// grant one task to the user with the smallest dominant share whose
// demand still fits the remaining capacity.
package drf

import (
	"errors"
	"fmt"
	"sort"
)

// Resources is a vector of named resource quantities (e.g. "threads",
// "memoryMB", "bandwidthMbps").
type Resources map[string]float64

// Clone copies a resource vector.
func (r Resources) Clone() Resources {
	out := make(Resources, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// fits reports whether demand fits within remaining.
func fits(remaining, demand Resources) bool {
	for k, d := range demand {
		if d > remaining[k] {
			return false
		}
	}
	return true
}

// user is one tenant with a fixed per-task demand vector.
type user struct {
	name   string
	demand Resources
	tasks  int
	limit  int // max tasks; 0 = unlimited
}

// Allocator is a DRF allocator over a fixed capacity. Not safe for
// concurrent use.
type Allocator struct {
	capacity  Resources
	remaining Resources
	users     map[string]*user
	order     []string
}

// Allocator errors.
var (
	ErrUnknownUser   = errors.New("drf: unknown user")
	ErrEmptyDemand   = errors.New("drf: demand must name at least one resource")
	ErrBadDemand     = errors.New("drf: demand exceeds capacity or is non-positive")
	ErrDuplicateUser = errors.New("drf: user already added")
)

// New builds an allocator with the given capacity.
func New(capacity Resources) (*Allocator, error) {
	if len(capacity) == 0 {
		return nil, errors.New("drf: capacity must name at least one resource")
	}
	for k, v := range capacity {
		if v <= 0 {
			return nil, fmt.Errorf("drf: capacity %q = %v must be positive", k, v)
		}
	}
	return &Allocator{
		capacity:  capacity.Clone(),
		remaining: capacity.Clone(),
		users:     make(map[string]*user),
	}, nil
}

// AddUser registers a tenant with its per-task demand.
func (a *Allocator) AddUser(name string, demand Resources) error {
	if _, ok := a.users[name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateUser, name)
	}
	if len(demand) == 0 {
		return ErrEmptyDemand
	}
	for k, v := range demand {
		if v <= 0 {
			return fmt.Errorf("%w: %s %q = %v", ErrBadDemand, name, k, v)
		}
		if _, ok := a.capacity[k]; !ok {
			return fmt.Errorf("drf: user %s demands unknown resource %q", name, k)
		}
		if v > a.capacity[k] {
			return fmt.Errorf("%w: %s needs %v of %q", ErrBadDemand, name, v, k)
		}
	}
	a.users[name] = &user{name: name, demand: demand.Clone()}
	a.order = append(a.order, name)
	sort.Strings(a.order)
	return nil
}

// SetLimit caps a user's task count: progressive filling skips the
// user once it holds max tasks. A non-positive max removes the cap.
// Tenant quotas compile down to this — the quota vector divided by the
// per-task demand gives the replica ceiling.
func (a *Allocator) SetLimit(name string, max int) error {
	u, ok := a.users[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, name)
	}
	if max < 0 {
		max = 0
	}
	u.limit = max
	return nil
}

// DominantShare returns the user's dominant share: the maximum over
// resources of (allocated / capacity).
func (a *Allocator) DominantShare(name string) (float64, error) {
	u, ok := a.users[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownUser, name)
	}
	share := 0.0
	for k, d := range u.demand {
		s := float64(u.tasks) * d / a.capacity[k]
		if s > share {
			share = s
		}
	}
	return share, nil
}

// Tasks returns how many tasks a user currently holds.
func (a *Allocator) Tasks(name string) int {
	if u, ok := a.users[name]; ok {
		return u.tasks
	}
	return 0
}

// Remaining returns a copy of unallocated capacity.
func (a *Allocator) Remaining() Resources { return a.remaining.Clone() }

// AllocateOne grants one task to the user with the smallest dominant
// share whose demand still fits, returning its name. ok is false when
// no user fits.
func (a *Allocator) AllocateOne() (string, bool) {
	best := ""
	bestShare := 0.0
	for _, name := range a.order {
		u := a.users[name]
		if u.limit > 0 && u.tasks >= u.limit {
			continue
		}
		if !fits(a.remaining, u.demand) {
			continue
		}
		share, _ := a.DominantShare(name)
		if best == "" || share < bestShare {
			best, bestShare = name, share
		}
	}
	if best == "" {
		return "", false
	}
	u := a.users[best]
	for k, d := range u.demand {
		a.remaining[k] -= d
	}
	u.tasks++
	return best, true
}

// AllocateAll progressively fills until no user's demand fits,
// returning the grant sequence.
func (a *Allocator) AllocateAll() []string {
	var grants []string
	for {
		name, ok := a.AllocateOne()
		if !ok {
			return grants
		}
		grants = append(grants, name)
	}
}

// Release returns one of a user's tasks to the pool.
func (a *Allocator) Release(name string) error {
	u, ok := a.users[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, name)
	}
	if u.tasks == 0 {
		return fmt.Errorf("drf: user %s has no tasks", name)
	}
	u.tasks--
	for k, d := range u.demand {
		a.remaining[k] += d
	}
	return nil
}

// Utilization reports per-resource used fraction.
func (a *Allocator) Utilization() Resources {
	out := make(Resources, len(a.capacity))
	for k, c := range a.capacity {
		out[k] = (c - a.remaining[k]) / c
	}
	return out
}
