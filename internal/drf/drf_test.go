package drf

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, capacity Resources) *Allocator {
	t.Helper()
	a, err := New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDRFPaperExample(t *testing.T) {
	// The canonical example from the DRF paper: capacity <9 CPU,
	// 18 GB>; user A tasks need <1 CPU, 4 GB>, user B tasks <3 CPU,
	// 1 GB>. Equalized dominant shares give A three tasks and B two.
	a := mustNew(t, Resources{"cpu": 9, "mem": 18})
	if err := a.AddUser("A", Resources{"cpu": 1, "mem": 4}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddUser("B", Resources{"cpu": 3, "mem": 1}); err != nil {
		t.Fatal(err)
	}
	a.AllocateAll()
	if got := a.Tasks("A"); got != 3 {
		t.Errorf("A tasks = %d, want 3", got)
	}
	if got := a.Tasks("B"); got != 2 {
		t.Errorf("B tasks = %d, want 2", got)
	}
	sa, _ := a.DominantShare("A")
	sb, _ := a.DominantShare("B")
	if math.Abs(sa-sb) > 1e-9 || math.Abs(sa-2.0/3.0) > 1e-9 {
		t.Errorf("dominant shares = %v, %v; want both 2/3", sa, sb)
	}
}

func TestNICResourceExample(t *testing.T) {
	// λ-NIC flavor: 448 NPU threads and 2048 MB of NIC memory shared
	// by a thread-hungry web lambda and a memory-hungry image lambda.
	a := mustNew(t, Resources{"threads": 448, "memMB": 2048})
	if err := a.AddUser("web", Resources{"threads": 8, "memMB": 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddUser("image", Resources{"threads": 2, "memMB": 64}); err != nil {
		t.Fatal(err)
	}
	a.AllocateAll()
	web, img := a.Tasks("web"), a.Tasks("image")
	if web == 0 || img == 0 {
		t.Fatalf("starvation: web=%d image=%d", web, img)
	}
	// Dominant shares end up near-equal (within one task's worth).
	sw, _ := a.DominantShare("web")
	si, _ := a.DominantShare("image")
	if math.Abs(sw-si) > 0.05 {
		t.Errorf("dominant shares diverge: web=%.3f image=%.3f", sw, si)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty capacity accepted")
	}
	if _, err := New(Resources{"cpu": 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	a := mustNew(t, Resources{"cpu": 4})
	if err := a.AddUser("x", nil); err == nil {
		t.Error("empty demand accepted")
	}
	if err := a.AddUser("x", Resources{"cpu": -1}); err == nil {
		t.Error("negative demand accepted")
	}
	if err := a.AddUser("x", Resources{"gpu": 1}); err == nil {
		t.Error("unknown resource accepted")
	}
	if err := a.AddUser("x", Resources{"cpu": 9}); err == nil {
		t.Error("oversized demand accepted")
	}
	if err := a.AddUser("x", Resources{"cpu": 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddUser("x", Resources{"cpu": 1}); err == nil {
		t.Error("duplicate user accepted")
	}
	if _, err := a.DominantShare("ghost"); err == nil {
		t.Error("unknown user share")
	}
	if err := a.Release("ghost"); err == nil {
		t.Error("release unknown user")
	}
	if err := a.Release("x"); err == nil {
		t.Error("release with no tasks")
	}
}

func TestReleaseReturnsCapacity(t *testing.T) {
	a := mustNew(t, Resources{"cpu": 2})
	if err := a.AddUser("x", Resources{"cpu": 1}); err != nil {
		t.Fatal(err)
	}
	grants := a.AllocateAll()
	if len(grants) != 2 {
		t.Fatalf("grants = %v", grants)
	}
	if _, ok := a.AllocateOne(); ok {
		t.Error("allocated beyond capacity")
	}
	if err := a.Release("x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.AllocateOne(); !ok {
		t.Error("release did not free capacity")
	}
}

func TestNeverExceedsCapacityProperty(t *testing.T) {
	// Property: for random user demands, AllocateAll never over-commits
	// any resource and no user with a feasible demand is starved while
	// others hold a larger dominant share.
	f := func(d1, d2, d3 uint8) bool {
		cap := Resources{"threads": 64, "mem": 256}
		a, err := New(cap)
		if err != nil {
			return false
		}
		demands := []Resources{
			{"threads": float64(d1%8 + 1), "mem": float64(d2%32 + 1)},
			{"threads": float64(d2%8 + 1), "mem": float64(d3%32 + 1)},
			{"threads": float64(d3%8 + 1), "mem": float64(d1%32 + 1)},
		}
		names := []string{"u1", "u2", "u3"}
		for i, n := range names {
			if err := a.AddUser(n, demands[i]); err != nil {
				return false
			}
		}
		a.AllocateAll()
		rem := a.Remaining()
		for _, v := range rem {
			if v < -1e-9 {
				return false
			}
		}
		// Each user ended because nothing more fits for the minimum-
		// share user; utilization of at least one resource should be
		// high (progressive filling ran to exhaustion).
		util := a.Utilization()
		return util["threads"] > 0.5 || util["mem"] > 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	a := mustNew(t, Resources{"cpu": 10})
	if err := a.AddUser("x", Resources{"cpu": 3}); err != nil {
		t.Fatal(err)
	}
	a.AllocateAll() // 3 tasks = 9 cpu
	if got := a.Utilization()["cpu"]; math.Abs(got-0.9) > 1e-9 {
		t.Errorf("utilization = %v, want 0.9", got)
	}
}
