package drf

import (
	"errors"
	"reflect"
	"testing"
)

// Two users with identical demand vectors always have equal dominant
// shares at equal task counts; the allocator must break those ties in
// stable name order so placement plans are reproducible across runs.
func TestTieBreakStableNameOrder(t *testing.T) {
	want := []string{"alpha", "beta", "alpha", "beta", "alpha", "beta"}
	for run := 0; run < 20; run++ {
		a := mustNew(t, Resources{"threads": 6})
		// Register in the opposite order each run: the sorted a.order
		// must make insertion order irrelevant.
		names := []string{"beta", "alpha"}
		if run%2 == 0 {
			names = []string{"alpha", "beta"}
		}
		for _, n := range names {
			if err := a.AddUser(n, Resources{"threads": 1}); err != nil {
				t.Fatal(err)
			}
		}
		if got := a.AllocateAll(); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d (insert order %v): grants = %v, want %v", run, names, got, want)
		}
	}
}

// A demand that omits one of the capacity's resource keys demands zero
// of it: allocation must neither consume that resource nor divide by
// it when computing dominant shares.
func TestZeroDemandResourceKey(t *testing.T) {
	a := mustNew(t, Resources{"threads": 4, "emem": 100})
	// cpuOnly never names "emem" at all.
	if err := a.AddUser("cpuOnly", Resources{"threads": 1}); err != nil {
		t.Fatal(err)
	}
	grants := a.AllocateAll()
	if len(grants) != 4 {
		t.Fatalf("grants = %v, want 4 thread-bound tasks", grants)
	}
	rem := a.Remaining()
	if rem["threads"] != 0 || rem["emem"] != 100 {
		t.Fatalf("remaining = %v, want threads exhausted and emem untouched", rem)
	}
	share, err := a.DominantShare("cpuOnly")
	if err != nil {
		t.Fatal(err)
	}
	if share != 1.0 {
		t.Fatalf("dominant share = %v, want 1.0 (threads), not polluted by emem", share)
	}
	if util := a.Utilization(); util["emem"] != 0 {
		t.Fatalf("emem utilization = %v, want 0", util["emem"])
	}
}

func TestSetLimitCapsUser(t *testing.T) {
	a := mustNew(t, Resources{"threads": 10})
	if err := a.AddUser("capped", Resources{"threads": 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddUser("free", Resources{"threads": 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetLimit("capped", 2); err != nil {
		t.Fatal(err)
	}
	a.AllocateAll()
	if got := a.Tasks("capped"); got != 2 {
		t.Errorf("capped tasks = %d, want quota limit 2", got)
	}
	// The uncapped user absorbs the leftover capacity.
	if got := a.Tasks("free"); got != 8 {
		t.Errorf("free tasks = %d, want 8", got)
	}
	// Lifting the cap lets progressive filling resume.
	if err := a.SetLimit("capped", 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.AllocateOne(); ok {
		t.Error("allocation succeeded with zero remaining capacity")
	}
	if err := a.Release("free"); err != nil {
		t.Fatal(err)
	}
	name, ok := a.AllocateOne()
	if !ok || name != "capped" {
		t.Errorf("post-uncap grant = %q, %v; want capped (smaller share)", name, ok)
	}
}

func TestSetLimitUnknownUser(t *testing.T) {
	a := mustNew(t, Resources{"threads": 1})
	if err := a.SetLimit("ghost", 1); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v, want ErrUnknownUser", err)
	}
}
