package cpusim

import (
	"errors"
	"testing"
	"time"

	"lambdanic/internal/cluster"
	"lambdanic/internal/sim"
)

func testCosts() cluster.SoftwareCosts {
	return cluster.SoftwareCosts{
		KernelRx:          20 * time.Microsecond,
		KernelTx:          15 * time.Microsecond,
		DispatchWarm:      40 * time.Microsecond,
		DispatchLoaded:    500 * time.Microsecond,
		ContextSwitch:     450 * time.Microsecond,
		OverlayPerPacket:  30 * time.Microsecond,
		ContainerFork:     2400 * time.Microsecond,
		InterpreterFactor: 38,
	}
}

func testConfig(mode Mode) Config {
	return Config{
		Host:  cluster.Default().Host,
		Costs: testCosts(),
		Mode:  mode,
	}
}

func newHost(t *testing.T, s *sim.Sim, cfg Config) *Host {
	t.Helper()
	h, err := New(s, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func deploy(t *testing.T, h *Host, p Profile) {
	t.Helper()
	if err := h.Deploy(p); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
}

func webProfile(id uint32) Profile {
	return Profile{ID: id, NativeInstructions: 600, GILFraction: 1}
}

func TestNewValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := New(s, Config{Host: cluster.Default().Host}); err == nil {
		t.Error("New without mode succeeded")
	}
	if _, err := New(s, Config{Mode: ModeBareMetal}); err == nil {
		t.Error("New with zero host succeeded")
	}
}

func TestDeployValidation(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeBareMetal))
	if err := h.Deploy(Profile{ID: 1, GILFraction: 1.5}); err == nil {
		t.Error("Deploy with GILFraction > 1 succeeded")
	}
}

func TestUnknownLambda(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeBareMetal))
	var got error
	h.Submit(9, 100, 1, func(err error) { got = err })
	if !errors.Is(got, ErrUnknownLambda) {
		t.Errorf("err = %v, want ErrUnknownLambda", got)
	}
}

func TestBareMetalWarmLatency(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeBareMetal))
	deploy(t, h, webProfile(1))

	var done sim.Time
	h.Submit(1, 100, 1, func(err error) {
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
		done = s.Now()
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Warm single request: rx(20+0.4/KB) + warm dispatch(40) +
	// exec(600*38/2GHz = 11.4µs) + tx(15+0.1). Roughly 87µs; assert a
	// window rather than the exact sum.
	if done < 80*time.Microsecond || done > 95*time.Microsecond {
		t.Errorf("warm bare-metal latency = %v, want ~87µs", done)
	}
}

func TestContainerAddsForkAndOverlay(t *testing.T) {
	sBare, sCont := sim.New(1), sim.New(1)
	bare := newHost(t, sBare, testConfig(ModeBareMetal))
	cont := newHost(t, sCont, testConfig(ModeContainer))
	deploy(t, bare, webProfile(1))
	deploy(t, cont, webProfile(1))

	var bareDone, contDone sim.Time
	bare.Submit(1, 100, 1, func(error) { bareDone = sBare.Now() })
	cont.Submit(1, 100, 1, func(error) { contDone = sCont.Now() })
	if err := sBare.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if err := sCont.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	extra := contDone - bareDone
	// Fork (2400µs) + 2x overlay (60µs) + overlay per-KB.
	if extra < 2400*time.Microsecond || extra > 2600*time.Microsecond {
		t.Errorf("container extra = %v, want ~2.48ms", extra)
	}
}

func TestLoadedDispatchSerializes(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeBareMetal))
	deploy(t, h, webProfile(1))

	const n = 20
	var completions int
	for i := 0; i < n; i++ {
		h.Submit(1, 100, 1, func(error) { completions++ })
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if completions != n {
		t.Fatalf("completed %d, want %d", completions, n)
	}
	// Under load the dispatch stage serializes at ~DispatchLoaded+exec
	// per request: makespan must be at least (n-1) * 500µs.
	if s.Now() < (n-1)*500*time.Microsecond {
		t.Errorf("makespan %v too small; loaded dispatch not serialized", s.Now())
	}
}

func TestContextSwitchChargedAcrossLambdas(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeBareMetal))
	for id := uint32(1); id <= 3; id++ {
		deploy(t, h, webProfile(id))
	}
	// Round-robin across 3 lambdas: every request switches.
	for i := 0; i < 9; i++ {
		h.Submit(uint32(i%3)+1, 100, 1, nil)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := h.Stats().ContextSwitches; got != 8 {
		t.Errorf("ContextSwitches = %d, want 8 (first request has no prior)", got)
	}
}

func TestNoContextSwitchSameLambda(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeBareMetal))
	deploy(t, h, webProfile(1))
	for i := 0; i < 5; i++ {
		h.Submit(1, 100, 1, nil)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := h.Stats().ContextSwitches; got != 0 {
		t.Errorf("ContextSwitches = %d, want 0", got)
	}
}

func TestSingleCoreSlower(t *testing.T) {
	mk := func(single bool) sim.Time {
		s := sim.New(1)
		cfg := testConfig(ModeBareMetal)
		cfg.SingleCore = single
		h := newHost(t, s, cfg)
		deploy(t, h, webProfile(1))
		var last sim.Time
		for i := 0; i < 20; i++ {
			h.Submit(1, 100, 1, func(error) { last = s.Now() })
		}
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	multi, single := mk(false), mk(true)
	if single <= multi {
		t.Errorf("single-core makespan %v not slower than multi-core %v", single, multi)
	}
}

func TestGILFractionParallelism(t *testing.T) {
	// A workload with GILFraction 0 should complete a concurrent batch
	// much faster than GILFraction 1, because execution parallelizes
	// across physical cores.
	mk := func(gil float64) sim.Time {
		s := sim.New(1)
		h := newHost(t, s, testConfig(ModeBareMetal))
		deploy(t, h, Profile{ID: 1, NativeInstructions: 5_000_000, GILFraction: gil})
		for i := 0; i < 28; i++ {
			h.Submit(1, 100, 1, nil)
		}
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	serial, parallel := mk(1), mk(0)
	if parallel >= serial/4 {
		t.Errorf("GIL-free makespan %v not ≪ GIL-bound %v", parallel, serial)
	}
}

func TestLargePayloadCostScales(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeContainer))
	deploy(t, h, Profile{ID: 1, NativeInstructions: 100, GILFraction: 1})
	var small, large sim.Time
	h.Submit(1, 1024, 1, func(error) { small = s.Now() })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	base := small
	s2 := sim.New(1)
	h2 := newHost(t, s2, testConfig(ModeContainer))
	deploy(t, h2, Profile{ID: 1, NativeInstructions: 100, GILFraction: 1})
	h2.Submit(1, 16*1024*1024, 11000, func(error) { large = s2.Now() })
	if err := s2.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// 16 MiB through the overlay at ~20µs/KB is ~330ms of extra cost.
	if large-base < 200*time.Millisecond {
		t.Errorf("large payload extra = %v, want > 200ms (overlay per-KB)", large-base)
	}
}

func TestExternalConnPenaltyOnlyUnderLoadAndContainer(t *testing.T) {
	cfgC := testConfig(ModeContainer)
	cfgC.ContainerExternalConn = 10 * time.Millisecond
	s := sim.New(1)
	h := newHost(t, s, cfgC)
	deploy(t, h, Profile{ID: 1, NativeInstructions: 600, GILFraction: 1, ExternalConnPerRequest: true})

	// Single warm request: no penalty.
	var warm sim.Time
	h.Submit(1, 100, 1, func(error) { warm = s.Now() })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if warm > 5*time.Millisecond {
		t.Errorf("warm external-conn latency = %v, want < 5ms", warm)
	}

	// Concurrent burst: the penalty serializes.
	s2 := sim.New(1)
	h2 := newHost(t, s2, cfgC)
	deploy(t, h2, Profile{ID: 1, NativeInstructions: 600, GILFraction: 1, ExternalConnPerRequest: true})
	for i := 0; i < 10; i++ {
		h2.Submit(1, 100, 1, nil)
	}
	if err := s2.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s2.Now() < 90*time.Millisecond {
		t.Errorf("loaded makespan = %v, want > 90ms (9 x 10ms penalties)", s2.Now())
	}
}

func TestUtilizationBounded(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeBareMetal))
	deploy(t, h, webProfile(1))
	for i := 0; i < 50; i++ {
		h.Submit(1, 100, 1, nil)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	u := h.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("Utilization = %v, want in (0, 1]", u)
	}
}

func TestModeString(t *testing.T) {
	if ModeBareMetal.String() != "bare-metal" || ModeContainer.String() != "container" {
		t.Error("Mode.String wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown Mode.String wrong")
	}
}

func TestFailRecover(t *testing.T) {
	s := sim.New(1)
	h := newHost(t, s, testConfig(ModeBareMetal))
	deploy(t, h, webProfile(1))

	h.Fail()
	if !h.Down() {
		t.Error("Down() = false after Fail")
	}
	var got error
	h.Submit(1, 100, 1, func(err error) { got = err })
	if !errors.Is(got, ErrHostDown) {
		t.Errorf("err = %v, want ErrHostDown", got)
	}

	h.Recover()
	served := false
	h.Submit(1, 100, 1, func(err error) {
		if err != nil {
			t.Errorf("post-recovery Submit: %v", err)
		}
		served = true
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !served {
		t.Error("recovered host did not serve")
	}
}
