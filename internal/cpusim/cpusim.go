// Package cpusim simulates the server-CPU execution path of the
// paper's baseline serverless backends (§6.1.1): the bare-metal backend
// (a Python service launching lambdas as threads, in the style of
// Isolate) and the container backend (OpenFaaS lambdas in Docker
// containers behind an overlay network).
//
// The model is a small queueing network assembled from multi-server
// FIFO stations:
//
//   - a kernel station (one server per hardware thread) charging the
//     network-stack cost of receiving and sending each request;
//   - a dispatch station with a single server modeling the backend
//     service's serialized section (the Python GIL; for containers also
//     the per-request watchdog fork), where context switches between
//     co-resident lambdas are charged (§6.3.2);
//   - a compute station (one server per physical core) running the
//     portion of lambda execution that is parallelizable.
//
// The paper attributes the CPU backends' behaviour — millisecond
// latencies, collapse under contention, long tails — precisely to these
// components, so reproducing the components reproduces the behaviour.
package cpusim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"lambdanic/internal/cluster"
	"lambdanic/internal/sim"
)

// Mode selects which baseline backend's overheads apply.
type Mode int

// Backend modes.
const (
	// ModeBareMetal is the paper's bare-metal (Isolate-style) backend:
	// a standalone Python service running lambdas as threads.
	ModeBareMetal Mode = iota + 1
	// ModeContainer is the OpenFaaS/Docker backend: adds the overlay
	// network per packet and a process fork per request.
	ModeContainer
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBareMetal:
		return "bare-metal"
	case ModeContainer:
		return "container"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Profile describes one lambda's CPU-side service demand.
type Profile struct {
	// ID is the lambda identifier (must be unique per host).
	ID uint32
	// NativeInstructions is the per-request work in native-equivalent
	// instructions; the interpreter factor scales it for the Python
	// runtime.
	NativeInstructions uint64
	// GILFraction is the fraction of execution holding the GIL
	// (serialized): 1.0 for pure-Python handlers (web server, KV
	// client), lower when C extensions release the GIL (image
	// transformer).
	GILFraction float64
	// ExternalConnPerRequest marks workloads that open a connection to
	// an external service per request (the KV client). Containers pay
	// the conntrack/NAT penalty for these under load.
	ExternalConnPerRequest bool
}

// Config parameterizes a simulated host backend.
type Config struct {
	Host  cluster.HostConfig
	Costs cluster.SoftwareCosts
	Mode  Mode
	// SingleCore restricts the backend to one hardware thread (the
	// "Bare Metal (Single Core)" series of Fig. 8), which additionally
	// forces kernel/user context switches onto the request path.
	SingleCore bool
	// ContainerExternalConn is the serialized per-request penalty for
	// external connections from a container under load (NAT/conntrack
	// setup); only charged in ModeContainer for profiles with
	// ExternalConnPerRequest.
	ContainerExternalConn time.Duration
	// Jitter enables OS scheduling noise on the dispatch path: Gaussian
	// service variation plus rare latency spikes (timer interrupts,
	// page faults, GC). This produces the long tails the paper observes
	// on the CPU backends ("likely the artifact of miscellaneous
	// software overheads", §6.3.1); λ-NIC's run-to-completion threads
	// have no equivalent, so its tail stays tight.
	Jitter bool
}

// Jitter model constants.
const (
	jitterStddev = 0.08  // relative Gaussian service noise
	spikeProb    = 0.015 // probability of a scheduling spike
	spikeScale   = 2.5   // spike magnitude relative to base service
)

// Stats aggregates host-level counters.
type Stats struct {
	Completed       uint64
	ContextSwitches uint64
	// BusyTime is the total CPU occupancy across all stations, used to
	// derive host CPU utilization (Table 3).
	BusyTime time.Duration
}

// Host is the simulated CPU backend. Construct with New; submit work
// from simulation callbacks.
type Host struct {
	sim      *sim.Sim
	cfg      Config
	profiles map[uint32]*Profile

	kernel   *station
	dispatch *station
	compute  *station

	// down is the fail-stop state (Fail/Recover): a downed host refuses
	// new work with ErrHostDown.
	down bool

	lastLambda uint32
	hasLast    bool

	stats Stats
}

// ErrUnknownLambda is returned when a request names an undeployed
// lambda.
var ErrUnknownLambda = errors.New("cpusim: unknown lambda")

// ErrHostDown is returned by Submit while the host is failed.
var ErrHostDown = errors.New("cpusim: host down")

// New constructs a host backend.
func New(s *sim.Sim, cfg Config) (*Host, error) {
	if cfg.Mode != ModeBareMetal && cfg.Mode != ModeContainer {
		return nil, fmt.Errorf("cpusim: invalid mode %d", cfg.Mode)
	}
	if cfg.Host.Threads() <= 0 || cfg.Host.ClockHz == 0 {
		return nil, errors.New("cpusim: host has no threads or zero clock")
	}
	kernelServers := cfg.Host.Threads()
	computeServers := cfg.Host.PhysicalCores
	if cfg.SingleCore {
		kernelServers = 1
		computeServers = 1
	}
	h := &Host{
		sim:      s,
		cfg:      cfg,
		profiles: make(map[uint32]*Profile),
	}
	h.kernel = newStation(s, kernelServers, &h.stats.BusyTime)
	h.dispatch = newStation(s, 1, &h.stats.BusyTime)
	h.compute = newStation(s, computeServers, &h.stats.BusyTime)
	return h, nil
}

// Deploy registers a lambda profile.
func (h *Host) Deploy(p Profile) error {
	if p.GILFraction < 0 || p.GILFraction > 1 {
		return fmt.Errorf("cpusim: GILFraction %v out of [0,1]", p.GILFraction)
	}
	cp := p
	h.profiles[p.ID] = &cp
	return nil
}

// Fail fail-stops the host: subsequent submissions complete immediately
// with ErrHostDown (the connection-refused analog — unlike a crashed
// NIC, a dead host's TCP peers get an explicit reset). Work already in
// the stations drains normally.
func (h *Host) Fail() { h.down = true }

// Recover brings a failed host back with its deployed profiles intact.
func (h *Host) Recover() { h.down = false }

// Down reports the fail-stop state.
func (h *Host) Down() bool { return h.down }

// Stats returns a copy of the counters.
func (h *Host) Stats() Stats { return h.stats }

// Utilization returns average CPU utilization over elapsed virtual
// time across the host's hardware threads.
func (h *Host) Utilization() float64 {
	elapsed := h.sim.Now()
	if elapsed <= 0 {
		return 0
	}
	threads := h.cfg.Host.Threads()
	if h.cfg.SingleCore {
		threads = 1
	}
	return float64(h.stats.BusyTime) / (float64(elapsed) * float64(threads))
}

// Submit delivers a request for the given lambda with a payload of
// payloadBytes spanning packets wire packets. done fires when the
// response has left the host.
func (h *Host) Submit(lambdaID uint32, payloadBytes int, packets int, done func(error)) {
	if h.down {
		if done != nil {
			done(ErrHostDown)
		}
		return
	}
	p, ok := h.profiles[lambdaID]
	if !ok {
		if done != nil {
			done(fmt.Errorf("%w: %d", ErrUnknownLambda, lambdaID))
		}
		return
	}
	if packets < 1 {
		packets = 1
	}
	complete := func() {
		h.stats.Completed++
		if done != nil {
			done(nil)
		}
	}
	// Stage 1: kernel receive.
	h.kernel.submit(h.kernelCost(payloadBytes, packets), func() {
		// Stage 2: serialized dispatch (+ GIL-held execution share).
		h.dispatch.submit(h.dispatchCost(p), func() {
			// Stage 3: parallel execution share.
			par := h.parallelExecCost(p)
			if par <= 0 {
				h.sendResponse(payloadBytes, packets, complete)
				return
			}
			h.compute.submit(par, func() {
				h.sendResponse(payloadBytes, packets, complete)
			})
		})
	})
}

func (h *Host) sendResponse(payloadBytes, packets int, done func()) {
	h.kernel.submit(h.kernelTxCost(payloadBytes, packets), done)
}

// kernelCost models the receive path: a fixed per-request stack cost
// plus a per-KB copy cost; containers add the overlay network cost per
// packet batch.
func (h *Host) kernelCost(payloadBytes, packets int) time.Duration {
	c := h.cfg.Costs.KernelRx
	c += perKBCost(payloadBytes, kernelPerKB)
	if h.cfg.Mode == ModeContainer {
		c += h.cfg.Costs.OverlayPerPacket
		c += perKBCost(payloadBytes, overlayPerKB)
	}
	_ = packets
	return c
}

func (h *Host) kernelTxCost(payloadBytes, packets int) time.Duration {
	c := h.cfg.Costs.KernelTx
	c += perKBCost(payloadBytes, kernelPerKB) / 4 // responses are small relative to requests
	if h.cfg.Mode == ModeContainer {
		c += h.cfg.Costs.OverlayPerPacket
	}
	_ = packets
	return c
}

// Bulk-transfer costs: large payloads are coalesced by GRO/LRO, so the
// marginal cost is per KB rather than per MTU packet.
const (
	kernelPerKB  = 400 * time.Nanosecond
	overlayPerKB = 25 * time.Microsecond
)

func perKBCost(bytes int, perKB time.Duration) time.Duration {
	if bytes <= 0 {
		return 0
	}
	kb := (bytes + 1023) / 1024
	return time.Duration(kb) * perKB
}

// dispatchCost is the serialized section: dispatch (warm when the
// serialized server is idle, loaded when contended), the GIL-held
// execution share, a context switch when the previous request ran a
// different lambda, the container fork, and the container external-
// connection penalty.
func (h *Host) dispatchCost(p *Profile) time.Duration {
	var c time.Duration
	if h.dispatch.idle() {
		c += h.cfg.Costs.DispatchWarm
	} else {
		c += h.cfg.Costs.DispatchLoaded
	}
	if h.hasLast && h.lastLambda != p.ID {
		c += h.cfg.Costs.ContextSwitch
		h.stats.ContextSwitches++
	}
	if h.cfg.SingleCore {
		// Kernel softirq and the user thread share one core: two
		// kernel/user switches land on the request path.
		c += 2 * h.cfg.Costs.ContextSwitch
		h.stats.ContextSwitches += 2
	}
	h.lastLambda = p.ID
	h.hasLast = true
	if h.cfg.Mode == ModeContainer {
		c += h.cfg.Costs.ContainerFork
		if p.ExternalConnPerRequest && !h.dispatch.idle() {
			c += h.cfg.ContainerExternalConn
		}
	}
	c += h.gilExecCost(p)
	if h.cfg.Jitter {
		c = h.applyJitter(c)
	}
	return c
}

// applyJitter perturbs a service time with scheduling noise.
func (h *Host) applyJitter(c time.Duration) time.Duration {
	rng := h.sim.Rand()
	scale := 1 + jitterStddev*abs(rng.NormFloat64())
	if rng.Float64() < spikeProb {
		scale += spikeScale * rng.Float64()
	}
	return time.Duration(float64(c) * scale)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// gilExecCost is the GIL-held share of lambda execution time.
func (h *Host) gilExecCost(p *Profile) time.Duration {
	return time.Duration(float64(h.execCost(p)) * p.GILFraction)
}

// parallelExecCost is the share of execution that runs outside the GIL.
func (h *Host) parallelExecCost(p *Profile) time.Duration {
	return time.Duration(float64(h.execCost(p)) * (1 - p.GILFraction))
}

// execCost converts instruction demand to CPU time through the
// interpreter factor.
func (h *Host) execCost(p *Profile) time.Duration {
	eff := float64(p.NativeInstructions) * math.Max(1, h.cfg.Costs.InterpreterFactor)
	sec := eff / float64(h.cfg.Host.ClockHz)
	return time.Duration(sec * float64(time.Second))
}

// station is a multi-server FIFO queue.
type station struct {
	sim     *sim.Sim
	servers int
	busy    int
	queue   []stationJob
	busyAcc *time.Duration
}

type stationJob struct {
	service time.Duration
	done    func()
}

func newStation(s *sim.Sim, servers int, busyAcc *time.Duration) *station {
	if servers < 1 {
		servers = 1
	}
	return &station{sim: s, servers: servers, busyAcc: busyAcc}
}

// idle reports whether the station has a free server and no backlog.
func (st *station) idle() bool { return st.busy < st.servers && len(st.queue) == 0 }

func (st *station) submit(service time.Duration, done func()) {
	if st.busy < st.servers {
		st.busy++
		st.run(service, done)
		return
	}
	st.queue = append(st.queue, stationJob{service: service, done: done})
}

func (st *station) run(service time.Duration, done func()) {
	*st.busyAcc += service
	st.sim.After(service, func() {
		done()
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue[0] = stationJob{}
			st.queue = st.queue[1:]
			st.run(next.service, next.done)
			return
		}
		st.busy--
	})
}
