package cpusim

import (
	"testing"

	"lambdanic/internal/sim"
)

func benchHost(b *testing.B, mode Mode) (*sim.Sim, *Host) {
	b.Helper()
	s := sim.New(1)
	h, err := New(s, testBenchConfig(mode))
	if err != nil {
		b.Fatal(err)
	}
	if err := h.Deploy(Profile{ID: 1, NativeInstructions: 600, GILFraction: 1}); err != nil {
		b.Fatal(err)
	}
	return s, h
}

func testBenchConfig(mode Mode) Config {
	cfg := testConfig(mode)
	return cfg
}

func BenchmarkBareMetalBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, h := benchHost(b, ModeBareMetal)
		for r := 0; r < 200; r++ {
			h.Submit(1, 100, 1, nil)
		}
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
		if h.Stats().Completed != 200 {
			b.Fatal("incomplete")
		}
	}
	b.ReportMetric(200, "requests/iter")
}

func BenchmarkContainerBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, h := benchHost(b, ModeContainer)
		for r := 0; r < 200; r++ {
			h.Submit(1, 100, 1, nil)
		}
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}
