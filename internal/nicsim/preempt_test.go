package nicsim

import (
	"testing"

	"lambdanic/internal/sim"
)

// Tests for the preemptive (time-sliced) ablation mode. The default
// run-to-completion behavior is covered in nicsim_test.go.

func TestPreemptiveSlicesLongRequest(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(1)
	cfg.Preemptive = true
	cfg.QuantumCycles = 1000
	cfg.ContextSwitchCycles = 100
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 3500})) // needs 4 slices

	done := false
	n.Inject(&Request{LambdaID: 1}, func(Response, error) { done = true })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("sliced request never completed")
	}
	st := n.Stats()
	// 3620 total cycles (3500 + parse/match 120) at quantum 1000: three
	// full slices then a final partial one -> 3 preemptions.
	if st.Preemptions != 3 {
		t.Errorf("Preemptions = %d, want 3", st.Preemptions)
	}
	// Busy cycles include the context-switch tax.
	want := uint64(3500 + 120 + 3*100)
	if st.BusyCycles != want {
		t.Errorf("BusyCycles = %d, want %d", st.BusyCycles, want)
	}
}

func TestPreemptiveInterleavesShortBehindLong(t *testing.T) {
	// On one thread, a short request arriving behind a long one
	// completes earlier under time slicing than under run-to-completion
	// (that is the only thing preemption buys — at the cost of switch
	// overhead and a later long-request finish).
	run := func(preemptive bool) (shortDone, makespan sim.Time) {
		s := sim.New(1)
		cfg := smallConfig(1)
		cfg.Preemptive = preemptive
		cfg.QuantumCycles = 1000
		cfg.ContextSwitchCycles = 50
		n := newNIC(t, s, cfg)
		img := &fakeImage{lambdas: map[uint32]fakeLambda{
			1: {instr: 50_000}, // long
			2: {instr: 200},    // short
		}, static: 100}
		if err := n.Load(img); err != nil {
			t.Fatal(err)
		}
		n.Inject(&Request{LambdaID: 1}, nil)
		n.Inject(&Request{LambdaID: 2}, func(Response, error) { shortDone = s.Now() })
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return shortDone, s.Now()
	}
	rtcShort, rtcMakespan := run(false)
	preShort, preMakespan := run(true)
	if !(preShort < rtcShort) {
		t.Errorf("preemption did not help the short request: %v vs %v", preShort, rtcShort)
	}
	if !(preMakespan > rtcMakespan) {
		t.Errorf("preemption paid no makespan tax: %v vs %v", preMakespan, rtcMakespan)
	}
}

func TestPreemptiveExecutesOnce(t *testing.T) {
	// The functional execution must happen exactly once even when the
	// request is sliced many times.
	s := sim.New(1)
	cfg := smallConfig(1)
	cfg.Preemptive = true
	cfg.QuantumCycles = 500
	n := newNIC(t, s, cfg)
	img := image(1, fakeLambda{instr: 10_000})
	if err := n.Load(img); err != nil {
		t.Fatal(err)
	}
	var gotPayload []byte
	n.Inject(&Request{LambdaID: 1, Payload: []byte("once")}, func(r Response, err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		gotPayload = r.Payload
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if img.execCount != 1 {
		t.Errorf("Execute ran %d times, want 1", img.execCount)
	}
	if string(gotPayload) != "once" {
		t.Errorf("payload = %q", gotPayload)
	}
}

func TestRunToCompletionHasNoPreemptions(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(2)
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 1_000_000}))
	for i := 0; i < 4; i++ {
		n.Inject(&Request{LambdaID: 1}, nil)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().Preemptions; got != 0 {
		t.Errorf("Preemptions = %d in RTC mode", got)
	}
}
