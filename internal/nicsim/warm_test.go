package nicsim

import (
	"testing"

	"lambdanic/internal/sim"
)

// warmConfig: one core, one thread, so every request lands on the same
// warm set and completion order is trivial.
func warmConfig(warmFlows int, coldCycles uint64) Config {
	cfg := smallConfig(1)
	cfg.WarmFlows = warmFlows
	cfg.ColdStartCycles = coldCycles
	return cfg
}

func runOne(t *testing.T, s *sim.Sim, n *NIC, flow uint64) sim.Time {
	t.Helper()
	start := s.Now()
	var end sim.Time
	done := false
	n.Inject(&Request{LambdaID: 1, Payload: []byte("x"), Packets: 1, FlowKey: flow},
		func(_ Response, err error) {
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			end = s.Now()
			done = true
		})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if !done {
		t.Fatal("request did not complete")
	}
	return end - start
}

func TestWarmHitSkipsColdStartSurcharge(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, warmConfig(4, 10000))
	loadSingle(t, n, image(1, fakeLambda{instr: 500}))

	cold := runOne(t, s, n, 42)
	warm := runOne(t, s, n, 42)
	if warm >= cold {
		t.Fatalf("warm latency %v not below cold %v", warm, cold)
	}
	st := n.Stats()
	if st.WarmHits != 1 || st.WarmMisses != 1 {
		t.Fatalf("WarmHits/WarmMisses = %d/%d, want 1/1", st.WarmHits, st.WarmMisses)
	}
	// The surcharge is exactly ColdStartCycles of extra service time.
	want := sim.CyclesToDuration(10000, n.cfg.NIC.ClockHz)
	if cold-warm != want {
		t.Fatalf("surcharge = %v, want %v", cold-warm, want)
	}
}

func TestWarmStatePerCoreLRUEvicts(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, warmConfig(2, 1000))
	loadSingle(t, n, image(1, fakeLambda{instr: 100}))

	runOne(t, s, n, 1) // miss
	runOne(t, s, n, 2) // miss
	runOne(t, s, n, 3) // miss, evicts 1
	runOne(t, s, n, 1) // miss again (evicted)
	runOne(t, s, n, 3) // hit
	st := n.Stats()
	if st.WarmHits != 1 || st.WarmMisses != 4 {
		t.Fatalf("WarmHits/WarmMisses = %d/%d, want 1/4", st.WarmHits, st.WarmMisses)
	}
}

func TestWarmModelDisabledByDefault(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, smallConfig(1))
	loadSingle(t, n, image(1, fakeLambda{instr: 100}))

	runOne(t, s, n, 7)
	runOne(t, s, n, 7)
	st := n.Stats()
	if st.WarmHits != 0 || st.WarmMisses != 0 {
		t.Fatalf("warm counters moved with WarmFlows=0: %d/%d", st.WarmHits, st.WarmMisses)
	}
}

func TestWarmModelIgnoresZeroFlowKey(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, warmConfig(4, 1000))
	loadSingle(t, n, image(1, fakeLambda{instr: 100}))

	runOne(t, s, n, 0)
	runOne(t, s, n, 0)
	st := n.Stats()
	if st.WarmHits != 0 || st.WarmMisses != 0 {
		t.Fatalf("warm counters moved for FlowKey=0: %d/%d", st.WarmHits, st.WarmMisses)
	}
}

func TestCrashFlushesWarmState(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, warmConfig(4, 1000))
	loadSingle(t, n, image(1, fakeLambda{instr: 100}))

	runOne(t, s, n, 5) // miss, now resident
	n.Crash()
	n.Recover()
	runOne(t, s, n, 5) // cold again: SRAM did not survive the crash
	st := n.Stats()
	if st.WarmHits != 0 || st.WarmMisses != 2 {
		t.Fatalf("WarmHits/WarmMisses = %d/%d, want 0/2 after crash", st.WarmHits, st.WarmMisses)
	}
}

func TestFirmwareSwapFlushesWarmState(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, warmConfig(4, 1000))
	loadSingle(t, n, image(1, fakeLambda{instr: 100}))

	runOne(t, s, n, 9)
	loadSingle(t, n, image(1, fakeLambda{instr: 100})) // hitless swap
	runOne(t, s, n, 9)
	st := n.Stats()
	if st.WarmHits != 0 || st.WarmMisses != 2 {
		t.Fatalf("WarmHits/WarmMisses = %d/%d, want 0/2 after swap", st.WarmHits, st.WarmMisses)
	}
}
