package nicsim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"lambdanic/internal/cluster"
	"lambdanic/internal/sim"
)

// fakeLambda is one lambda's fixed cost inside a fakeImage.
type fakeLambda struct {
	instr uint64
	emem  uint64
}

// fakeImage is a firmware image charging fixed costs per lambda and
// echoing the request payload.
type fakeImage struct {
	lambdas   map[uint32]fakeLambda
	static    int
	memory    map[MemLevel]int
	execCount int
}

func (f *fakeImage) Execute(req *Request) (Response, error) {
	f.execCount++
	l := f.lambdas[req.LambdaID]
	var st ExecStats
	st.Instructions = l.instr
	st.AddAccess(MemEMEM, l.emem)
	return Response{Payload: req.Payload, Stats: st}, nil
}

func (f *fakeImage) Handles(id uint32) bool {
	_, ok := f.lambdas[id]
	return ok
}

func (f *fakeImage) StaticInstructions() int { return f.static }

func (f *fakeImage) MemoryBytes() map[MemLevel]int { return f.memory }

// image builds a fakeImage for a single lambda.
func image(id uint32, l fakeLambda) *fakeImage {
	return &fakeImage{lambdas: map[uint32]fakeLambda{id: l}, static: 1000}
}

func testConfig() Config {
	return Config{NIC: cluster.Default().NIC}
}

// smallConfig returns a NIC with very few threads so queueing is easy to
// trigger.
func smallConfig(threads int) Config {
	cfg := testConfig()
	cfg.NIC.Islands = 1
	cfg.NIC.CoresPerIsland = 1
	cfg.NIC.ThreadsPerCore = threads
	return cfg
}

func newNIC(t *testing.T, s *sim.Sim, cfg Config) *NIC {
	t.Helper()
	n, err := New(s, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func loadSingle(t *testing.T, n *NIC, img *fakeImage) {
	t.Helper()
	if err := n.Load(img); err != nil {
		t.Fatalf("Load: %v", err)
	}
}

func TestNewRejectsZeroThreads(t *testing.T) {
	if _, err := New(sim.New(1), Config{}); err == nil {
		t.Fatal("New with zero threads succeeded, want error")
	}
}

func TestInjectWithoutFirmware(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, testConfig())
	var gotErr error
	n.Inject(&Request{LambdaID: 1}, func(_ Response, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrNoFirmware) {
		t.Errorf("err = %v, want ErrNoFirmware", gotErr)
	}
	if n.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", n.Stats().Dropped)
	}
}

func TestSingleRequestLatency(t *testing.T) {
	s := sim.New(1)
	cfg := testConfig()
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(7, fakeLambda{instr: 500, emem: 2}))

	var completedAt sim.Time
	n.Inject(&Request{LambdaID: 7, Payload: []byte("hi"), Packets: 1}, func(r Response, err error) {
		if err != nil {
			t.Errorf("Execute error: %v", err)
		}
		if string(r.Payload) != "hi" {
			t.Errorf("payload = %q, want %q", r.Payload, "hi")
		}
		completedAt = s.Now()
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// cycles = parse/match (120) + 500 instr + 2 EMEM x 500 = 1620
	want := sim.CyclesToDuration(120+500+2*500, cfg.NIC.ClockHz)
	if completedAt != want {
		t.Errorf("completion at %v, want %v", completedAt, want)
	}
}

func TestMultiPacketReorderCost(t *testing.T) {
	s := sim.New(1)
	cfg := testConfig()
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 100}))

	var at sim.Time
	n.Inject(&Request{LambdaID: 1, Packets: 4}, func(Response, error) { at = s.Now() })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := sim.CyclesToDuration(120+4*30+100, cfg.NIC.ClockHz)
	if at != want {
		t.Errorf("completion at %v, want %v (reorder charged)", at, want)
	}
}

func TestUnmatchedLambdaGoesToHost(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, testConfig())
	loadSingle(t, n, image(1, fakeLambda{instr: 10}))

	var hostGot *Request
	n.SetHostPath(func(r *Request) { hostGot = r })
	var cbErr error
	n.Inject(&Request{LambdaID: 99}, func(_ Response, err error) { cbErr = err })
	if hostGot == nil || hostGot.LambdaID != 99 {
		t.Errorf("host path got %+v, want lambda 99", hostGot)
	}
	if cbErr == nil {
		t.Error("expected error for unmatched lambda")
	}
	if n.Stats().SentToHost != 1 {
		t.Errorf("SentToHost = %d, want 1", n.Stats().SentToHost)
	}
}

func TestInstructionStoreLimit(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, testConfig())
	err := n.Load(&fakeImage{static: 16*1024 + 1})
	if !errors.Is(err, ErrProgramTooLarge) {
		t.Errorf("Load = %v, want ErrProgramTooLarge", err)
	}
	// Exactly at the limit fits.
	err = n.Load(&fakeImage{static: 16 * 1024})
	if err != nil {
		t.Errorf("Load at limit = %v, want nil", err)
	}
}

func TestMemoryCapacityLimit(t *testing.T) {
	s := sim.New(1)
	cfg := testConfig()
	n := newNIC(t, s, cfg)
	err := n.Load(&fakeImage{memory: map[MemLevel]int{MemEMEM: cfg.NIC.EMEMBytes + 1}})
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Errorf("Load = %v, want ErrMemoryExceeded", err)
	}
}

func TestQueueingWhenSaturated(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(2) // 2 threads
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 633})) // ~1µs + parse/match each

	done := 0
	for i := 0; i < 6; i++ {
		n.Inject(&Request{LambdaID: 1}, func(Response, error) { done++ })
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if done != 6 {
		t.Errorf("completed %d, want 6", done)
	}
	st := n.Stats()
	if st.MaxQueueDepth < 4 {
		t.Errorf("MaxQueueDepth = %d, want >= 4 (6 arrivals, 2 threads)", st.MaxQueueDepth)
	}
	// With 2 threads and 6 equal requests, makespan is 3 service times.
	service := sim.CyclesToDuration(120+633, cfg.NIC.ClockHz)
	if got, want := s.Now(), 3*service; got != want {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestParallelThreadsRunConcurrently(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(8)
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 6330}))

	done := 0
	for i := 0; i < 8; i++ {
		n.Inject(&Request{LambdaID: 1}, func(Response, error) { done++ })
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	service := sim.CyclesToDuration(120+6330, cfg.NIC.ClockHz)
	if got := s.Now(); got != service {
		t.Errorf("8 requests on 8 threads took %v, want one service time %v", got, service)
	}
}

func TestWFQDispatchFairUnderSaturation(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(1)
	cfg.Dispatch = DispatchWFQ
	n := newNIC(t, s, cfg)
	img := &fakeImage{lambdas: map[uint32]fakeLambda{1: {instr: 100}, 2: {instr: 100}}, static: 1000}
	if err := n.Load(img); err != nil {
		t.Fatal(err)
	}
	// Flow 1 floods first; flow 2's requests arrive after. WFQ must not
	// starve flow 2 behind flow 1's backlog.
	var order []uint32
	for i := 0; i < 10; i++ {
		n.Inject(&Request{LambdaID: 1, Payload: make([]byte, 100)}, func(Response, error) { order = append(order, 1) })
	}
	for i := 0; i < 10; i++ {
		n.Inject(&Request{LambdaID: 2, Payload: make([]byte, 100)}, func(Response, error) { order = append(order, 2) })
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// Count flow-2 completions within the first half.
	flow2Early := 0
	for _, f := range order[:10] {
		if f == 2 {
			flow2Early++
		}
	}
	if flow2Early < 3 {
		t.Errorf("WFQ served only %d of flow 2 in first half; starvation", flow2Early)
	}
}

func TestFirmwareSwapDowntime(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(4)
	cfg.FirmwareSwapDowntime = time.Second
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 10}))
	// Swap firmware: NIC goes down for 1s.
	loadSingle(t, n, image(2, fakeLambda{instr: 10}))

	var gotErr error
	n.Inject(&Request{LambdaID: 2}, func(_ Response, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrNICDown) {
		t.Errorf("during swap err = %v, want ErrNICDown", gotErr)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// After downtime elapses, requests are served.
	served := false
	n.Inject(&Request{LambdaID: 2}, func(_ Response, err error) { served = err == nil })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !served {
		t.Error("request after downtime not served")
	}
}

func TestFirstLoadHasNoDowntime(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(1)
	cfg.FirmwareSwapDowntime = time.Second
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 10}))
	served := false
	n.Inject(&Request{LambdaID: 1}, func(_ Response, err error) { served = err == nil })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !served {
		t.Error("request after first load not served; first load must be downtime-free")
	}
}

func TestMemoryUsed(t *testing.T) {
	s := sim.New(1)
	n := newNIC(t, s, testConfig())
	if n.MemoryUsed() != 0 {
		t.Error("MemoryUsed != 0 before load")
	}
	loadSingle(t, n, &fakeImage{memory: map[MemLevel]int{MemIMEM: 1 << 20, MemCTM: 1 << 10}})
	if got := n.MemoryUsed(); got != 1<<20+1<<10 {
		t.Errorf("MemoryUsed = %d, want %d", got, 1<<20+1<<10)
	}
}

func TestUtilization(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(1)
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 633_000_000 - 120})) // exactly 1s busy
	n.Inject(&Request{LambdaID: 1}, nil)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := n.Utilization(); got < 0.99 || got > 1.01 {
		t.Errorf("Utilization = %v, want ~1.0", got)
	}
}

func TestMemLevelString(t *testing.T) {
	tests := []struct {
		lvl  MemLevel
		want string
	}{
		{MemLocal, "LMEM"}, {MemCTM, "CTM"}, {MemIMEM, "IMEM"}, {MemEMEM, "EMEM"}, {MemLevel(42), "MemLevel(42)"},
	}
	for _, tt := range tests {
		if got := tt.lvl.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.lvl), got, tt.want)
		}
	}
}

func TestExecStatsCycles(t *testing.T) {
	cfg := cluster.Default().NIC
	var st ExecStats
	st.Instructions = 1000
	st.AddAccess(MemLocal, 10)
	st.AddAccess(MemCTM, 5)
	st.AddAccess(MemIMEM, 2)
	st.AddAccess(MemEMEM, 1)
	want := uint64(1000 + 10*1 + 5*50 + 2*150 + 1*500)
	if got := st.Cycles(cfg); got != want {
		t.Errorf("Cycles = %d, want %d", got, want)
	}
	if got := st.Accesses(MemCTM); got != 5 {
		t.Errorf("Accesses(CTM) = %d, want 5", got)
	}
	// Out-of-range levels are ignored, not a panic.
	st.AddAccess(MemLevel(0), 100)
	st.AddAccess(MemLevel(99), 100)
	if got := st.Accesses(MemLevel(99)); got != 0 {
		t.Errorf("Accesses(99) = %d, want 0", got)
	}
}

func TestWorkConservationProperty(t *testing.T) {
	// Property: the NIC's total busy cycles equal the sum of per-request
	// cycles (parse/match + reorder + execution) — no work is lost or
	// double-charged, regardless of arrival pattern or queueing.
	f := func(instrs []uint16, threads uint8) bool {
		s := sim.New(7)
		cfg := smallConfig(int(threads%7) + 1)
		n, err := New(s, cfg)
		if err != nil {
			return false
		}
		img := &fakeImage{lambdas: map[uint32]fakeLambda{}, static: 100}
		want := uint64(0)
		for i, instr := range instrs {
			if i >= 50 {
				break
			}
			id := uint32(i + 1)
			img.lambdas[id] = fakeLambda{instr: uint64(instr)}
			want += uint64(instr) + cfg.NIC.ParseMatchCycles
		}
		if len(img.lambdas) == 0 {
			return true
		}
		if err := n.Load(img); err != nil {
			return false
		}
		for id := range img.lambdas {
			n.Inject(&Request{LambdaID: id}, nil)
		}
		if err := s.RunUntilIdle(); err != nil {
			return false
		}
		return n.Stats().BusyCycles == want &&
			n.Stats().Completed == uint64(len(img.lambdas))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCrashBlackHolesAndRecovers(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(1)
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(7, fakeLambda{instr: 500}))

	// One request in flight, one queued behind it, then the crash: the
	// in-flight completion is suppressed, the queued request discarded,
	// and neither callback ever fires.
	completions := 0
	n.Inject(&Request{LambdaID: 7, Packets: 1}, func(Response, error) { completions++ })
	n.Inject(&Request{LambdaID: 7, Packets: 1}, func(Response, error) { completions++ })
	n.Crash()
	// Requests arriving at a crashed NIC vanish the same way.
	n.Inject(&Request{LambdaID: 7, Packets: 1}, func(Response, error) { completions++ })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if completions != 0 {
		t.Errorf("crashed NIC fired %d completions, want 0 (black hole)", completions)
	}
	if got := n.Stats().Dropped; got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}

	// Recover restores full capacity: the occupied thread was released
	// through the normal finish path.
	n.Recover()
	served := false
	n.Inject(&Request{LambdaID: 7, Packets: 1}, func(_ Response, err error) {
		if err != nil {
			t.Errorf("post-recovery request: %v", err)
		}
		served = true
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !served {
		t.Error("recovered NIC did not serve")
	}
}

func TestSetSlowdownStretchesService(t *testing.T) {
	run := func(factor float64) sim.Time {
		s := sim.New(1)
		n := newNIC(t, s, testConfig())
		loadSingle(t, n, image(7, fakeLambda{instr: 500}))
		n.SetSlowdown(factor)
		var done sim.Time
		n.Inject(&Request{LambdaID: 7, Packets: 1}, func(Response, error) { done = s.Now() })
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	base := run(0)
	slowed := run(3)
	if slowed != 3*base {
		t.Errorf("slowdown 3x: latency %v, want %v (base %v)", slowed, 3*base, base)
	}
	// Factors <= 1 restore full speed.
	if again := run(1); again != base {
		t.Errorf("slowdown 1x: latency %v, want base %v", again, base)
	}
}
