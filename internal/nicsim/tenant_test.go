package nicsim

import (
	"testing"

	"lambdanic/internal/cluster"
	"lambdanic/internal/drf"
	"lambdanic/internal/sim"
	"lambdanic/internal/tenant"
)

// A batch tenant fanning out over two lambdas must not squeeze the
// interactive tenant's single lambda below its weighted share: with
// weights 3:1 the interactive tenant gets ~3/4 of a saturated thread.
func TestTenantWFQIsolatesNoisyNeighbor(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(1)
	cfg.Dispatch = DispatchTenantWFQ
	cfg.TenantOf = func(lambdaID uint32) uint32 {
		if lambdaID == 1 {
			return 10 // interactive
		}
		return 20 // batch (lambdas 2 and 3)
	}
	cfg.TenantWeights = map[uint32]float64{10: 3, 20: 1}
	n := newNIC(t, s, cfg)
	img := &fakeImage{lambdas: map[uint32]fakeLambda{
		1: {instr: 100}, 2: {instr: 100}, 3: {instr: 100},
	}, static: 1000}
	loadSingle(t, n, img)

	// The batch tenant floods two flows before the interactive tenant's
	// requests arrive — the worst case for flat per-lambda WFQ, where
	// the 2:1 flow count would hand batch 2/3 of the service.
	var order []uint32
	record := func(id uint32) func(Response, error) {
		return func(Response, error) { order = append(order, id) }
	}
	for i := 0; i < 12; i++ {
		n.Inject(&Request{LambdaID: 2, Payload: make([]byte, 100)}, record(2))
		n.Inject(&Request{LambdaID: 3, Payload: make([]byte, 100)}, record(3))
	}
	for i := 0; i < 12; i++ {
		n.Inject(&Request{LambdaID: 1, Payload: make([]byte, 100)}, record(1))
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}

	// Once both tenants are backlogged (after the first in-flight
	// request), a 3:1 outer split should serve ~3 interactive per batch.
	interactiveEarly := 0
	for _, id := range order[1:13] {
		if id == 1 {
			interactiveEarly++
		}
	}
	if interactiveEarly < 8 {
		t.Errorf("interactive got %d of first 12 backlogged services, want >= 8 (3:1 weights)", interactiveEarly)
	}
	if got := n.TenantCompleted(10); got != 12 {
		t.Errorf("TenantCompleted(interactive) = %d, want 12", got)
	}
	if got := n.TenantCompleted(20); got != 24 {
		t.Errorf("TenantCompleted(batch) = %d, want 24", got)
	}
	if got := n.Stats().Completed; got != 36 {
		t.Errorf("Completed = %d, want 36", got)
	}
}

// Nil TenantOf degrades to a single tenant: everything schedules and
// counts under tenant 0.
func TestTenantWFQNilClassifier(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(1)
	cfg.Dispatch = DispatchTenantWFQ
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 10}))
	for i := 0; i < 5; i++ {
		n.Inject(&Request{LambdaID: 1}, nil)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := n.TenantCompleted(0); got != 5 {
		t.Errorf("TenantCompleted(0) = %d, want 5", got)
	}
}

// Crash must drain the hierarchical queue like the flat one.
func TestTenantWFQCrashDrainsQueue(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig(1)
	cfg.Dispatch = DispatchTenantWFQ
	n := newNIC(t, s, cfg)
	loadSingle(t, n, image(1, fakeLambda{instr: 1000}))
	for i := 0; i < 4; i++ {
		n.Inject(&Request{LambdaID: 1}, nil)
	}
	if n.queueDepth() != 3 {
		t.Fatalf("queueDepth = %d, want 3 queued behind 1 running", n.queueDepth())
	}
	n.Crash()
	if n.queueDepth() != 0 {
		t.Fatalf("queueDepth after crash = %d, want 0", n.queueDepth())
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().Dropped; got != 4 {
		t.Errorf("Dropped = %d, want 4 (3 queued + 1 in flight)", got)
	}
}

func TestTenantWFQRejectsBadWeight(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Dispatch = DispatchTenantWFQ
	cfg.TenantWeights = map[uint32]float64{1: -2}
	if _, err := New(sim.New(1), cfg); err == nil {
		t.Fatal("negative tenant weight accepted")
	}
}

func TestFleetResources(t *testing.T) {
	nic := cluster.Default().NIC
	cap := FleetResources(nic, 4)
	if cap[ResThreads] != float64(4*nic.NPUThreads()) {
		t.Errorf("threads = %v, want %d", cap[ResThreads], 4*nic.NPUThreads())
	}
	if cap[ResInstr] != float64(4*nic.InstrStorePerCore) {
		t.Errorf("instr = %v", cap[ResInstr])
	}
	if cap[ResIMEM] != float64(4*nic.IMEMBytes) || cap[ResEMEM] != float64(4*nic.EMEMBytes) {
		t.Errorf("imem/emem = %v/%v", cap[ResIMEM], cap[ResEMEM])
	}
}

func TestQuotaVectorOmitsUnlimited(t *testing.T) {
	v := QuotaVector(tenant.Quota{NPUThreads: 16, EMEMBytes: 1 << 20})
	if len(v) != 2 || v[ResThreads] != 16 || v[ResEMEM] != float64(1<<20) {
		t.Fatalf("QuotaVector = %v", v)
	}
	if len(QuotaVector(tenant.Quota{})) != 0 {
		t.Fatal("empty quota produced caps")
	}
}

func TestMaxTasks(t *testing.T) {
	quota := drf.Resources{ResThreads: 10, ResEMEM: 1000}
	demand := drf.Resources{ResThreads: 4, ResEMEM: 100}
	// threads bind first: floor(10/4)=2 < floor(1000/100)=10.
	if got := MaxTasks(quota, demand); got != 2 {
		t.Errorf("MaxTasks = %d, want 2", got)
	}
	// A quota on a resource the demand does not consume never binds.
	if got := MaxTasks(drf.Resources{ResIMEM: 5}, demand); got != 0 {
		t.Errorf("non-binding quota gave limit %d, want 0 (unlimited)", got)
	}
	if got := MaxTasks(nil, demand); got != 0 {
		t.Errorf("nil quota gave %d, want 0", got)
	}
}
