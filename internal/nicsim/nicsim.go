// Package nicsim simulates an ASIC-based SmartNIC in the style of the
// Netronome Agilio CX the paper evaluates on (§2.2, §5): a grid of
// multi-threaded RISC NPU cores grouped into islands, a four-level
// memory hierarchy (core-local memory, per-island CTM, on-chip IMEM,
// external EMEM), a hardware packet scheduler, and run-to-completion
// execution of Match+Lambda firmware.
//
// Execution is both functional and timed: each incoming request is run
// through the loaded lambda program (typically an internal/mcc
// interpreter), which returns the response payload and dynamic
// execution statistics (instructions retired, memory accesses per
// level). The simulator converts those statistics into NPU cycles using
// the cluster cost model and advances a discrete-event clock, so every
// latency and throughput figure emerges from the same mechanisms the
// paper credits: massive thread parallelism, no OS, no context
// switches, and memory placement (§4.2.1, D1-D3).
package nicsim

import (
	"errors"
	"fmt"
	"time"

	"lambdanic/internal/cluster"
	"lambdanic/internal/dispatch"
	"lambdanic/internal/obs"
	"lambdanic/internal/sim"
	"lambdanic/internal/wfq"
)

// MemLevel identifies one level of the NIC memory hierarchy (§5).
type MemLevel int

// Memory levels, nearest first.
const (
	MemLocal MemLevel = iota + 1 // core-local memory
	MemCTM                       // cluster target memory (per island)
	MemIMEM                      // on-chip internal memory
	MemEMEM                      // external DRAM
	numMemLevels
)

// String returns the architectural name of the memory level.
func (m MemLevel) String() string {
	switch m {
	case MemLocal:
		return "LMEM"
	case MemCTM:
		return "CTM"
	case MemIMEM:
		return "IMEM"
	case MemEMEM:
		return "EMEM"
	default:
		return fmt.Sprintf("MemLevel(%d)", int(m))
	}
}

// ExecStats are the dynamic costs of one lambda invocation, produced by
// the program's interpreter and charged to the executing NPU thread.
type ExecStats struct {
	// Instructions retired (1 cycle each at CPI=1).
	Instructions uint64
	// MemAccesses counts accesses per memory level; each access stalls
	// the thread for that level's latency.
	MemAccesses [numMemLevels]uint64
}

// AddAccess records n accesses at the given level.
func (e *ExecStats) AddAccess(level MemLevel, n uint64) {
	if level > 0 && level < numMemLevels {
		e.MemAccesses[level] += n
	}
}

// Accesses returns the access count at a level.
func (e *ExecStats) Accesses(level MemLevel) uint64 {
	if level > 0 && level < numMemLevels {
		return e.MemAccesses[level]
	}
	return 0
}

// Cycles converts the statistics to NPU cycles under the given NIC
// configuration.
func (e *ExecStats) Cycles(cfg cluster.NICConfig) uint64 {
	cycles := e.Instructions
	cycles += e.MemAccesses[MemLocal] * cfg.LocalLatency
	cycles += e.MemAccesses[MemCTM] * cfg.CTMLatency
	cycles += e.MemAccesses[MemIMEM] * cfg.IMEMLatency
	cycles += e.MemAccesses[MemEMEM] * cfg.EMEMLatency
	return cycles
}

// Request is one RPC arriving at the NIC. Multi-packet requests
// (Packets > 1) model RDMA-committed payloads (§4.2.1, D3): the payload
// is reordered/committed by the NIC before the lambda fires.
type Request struct {
	LambdaID uint32
	Payload  []byte
	// Packets is the number of wire packets the RPC spans (≥1).
	Packets int
	// FlowKey identifies the client flow (dispatch.FlowKey of source ×
	// workload) for the per-core warm-state model. Zero means untracked:
	// the request neither hits nor pollutes warm state.
	FlowKey uint64
	// Trace, when non-nil, receives the request's NIC-side lifecycle
	// spans: scheduler queue wait, instruction cycles, and per-level
	// memory stalls on the executing thread's island/core track.
	Trace *obs.Req
}

// Response is the lambda's reply.
type Response struct {
	Payload []byte
	// Stats are the execution statistics for observability and tests.
	Stats ExecStats
}

// Program is a loaded firmware image. Every core runs the same
// Match+Lambda program (§5): the image parses the request, matches on
// the lambda ID, and runs the selected lambda. It executes requests
// functionally and reports their dynamic cost. Implementations live in
// internal/mcc (compiled Match+Lambda programs) and in tests.
type Program interface {
	// Execute runs the image against the request (parse + match +
	// lambda). It must be deterministic given the request (simulation
	// determinism depends on it).
	Execute(req *Request) (Response, error)
	// Handles reports whether the image has a lambda for the ID;
	// unmatched requests go to the host OS path (§4.1).
	Handles(id uint32) bool
	// StaticInstructions is the compiled code size, checked against the
	// per-core instruction store when the firmware loads.
	StaticInstructions() int
	// MemoryBytes is the image's NIC memory footprint per level.
	MemoryBytes() map[MemLevel]int
}

// Dispatch selects how the hardware scheduler assigns requests to
// threads (§5: the Netronome scheduler is work-conserving and uniform;
// WFQ is λ-NIC's policy from §4.2.1 D1).
type Dispatch int

// Dispatch policies. DispatchTenantWFQ is the multi-tenant variant:
// hierarchical WFQ with an outer queue across tenants (weighted by
// tenant class) and an inner per-lambda queue within each tenant, so a
// tenant flooding many lambdas cannot take more than its weighted
// share from colocated tenants.
const (
	DispatchUniform Dispatch = iota + 1
	DispatchWFQ
	DispatchTenantWFQ
)

// Errors returned by the NIC.
var (
	ErrProgramTooLarge = errors.New("nicsim: program exceeds per-core instruction store")
	ErrMemoryExceeded  = errors.New("nicsim: program exceeds NIC memory capacity")
	ErrNoFirmware      = errors.New("nicsim: no firmware loaded")
	ErrNICDown         = errors.New("nicsim: firmware swap in progress")
)

// Config parameterizes the simulated NIC.
type Config struct {
	NIC cluster.NICConfig
	// Dispatch policy; DispatchUniform if unset.
	Dispatch Dispatch
	// FirmwareSwapDowntime models the paper's §7 limitation: loading
	// new firmware halts the NIC. Zero means hitless (future NICs).
	FirmwareSwapDowntime time.Duration
	// Preemptive replaces run-to-completion execution (§4.2.1 D1) with
	// CPU-style time slicing: a lambda runs QuantumCycles, pays
	// ContextSwitchCycles, and requeues. This exists only for the
	// run-to-completion ablation — the paper's design deliberately
	// avoids it.
	Preemptive bool
	// QuantumCycles is the time slice when Preemptive is set (default
	// 5,000 cycles ≈ 8 µs at 633 MHz).
	QuantumCycles uint64
	// ContextSwitchCycles is the per-preemption state save/restore cost
	// (default 500 cycles).
	ContextSwitchCycles uint64
	// TenantOf classifies a lambda ID to its owning tenant ID for
	// DispatchTenantWFQ (typically tenant.Registry.OwnerID). Nil maps
	// everything to tenant 0.
	TenantOf func(lambdaID uint32) uint32
	// TenantWeights are outer-queue WFQ weights per tenant ID for
	// DispatchTenantWFQ (typically tenant.Registry.Weights()). Missing
	// tenants default to weight 1.
	TenantWeights map[uint32]float64
	// WarmFlows enables the per-core warm-state model: each NPU core
	// keeps an LRU of the last WarmFlows flow keys it served (match-table
	// entries, KV working set, I-cache lines). A request whose FlowKey is
	// resident skips the cold-start surcharge. Zero disables the model.
	WarmFlows int
	// ColdStartCycles is the surcharge added to a request's instruction
	// cycles when its flow misses the executing core's warm set
	// (match-table install + working-set faults). Only meaningful with
	// WarmFlows > 0; zero tracks hit rates without a latency effect.
	ColdStartCycles uint64
}

// Stats aggregates NIC-level counters.
type Stats struct {
	Completed     uint64
	Dropped       uint64
	SentToHost    uint64
	BusyCycles    uint64
	MaxQueueDepth int
	// Preemptions counts time-slice expirations (ablation mode only).
	Preemptions uint64
	// WarmHits/WarmMisses count warm-state lookups (WarmFlows > 0 and
	// request FlowKey != 0 only). A hit means the executing core served
	// the flow recently and skipped the cold-start surcharge.
	WarmHits   uint64
	WarmMisses uint64
}

// NIC is the simulated SmartNIC. Create with New; drive by calling
// Inject from simulation callbacks.
type NIC struct {
	sim  *sim.Sim
	cfg  Config
	fw   Program
	down bool

	// crashed is the fail-stop state (Crash/Recover): a crashed NIC
	// black-holes traffic instead of answering, so failure is only
	// observable through timeouts — the crash model healthd detects.
	crashed bool
	// slowdown > 1 stretches service times (island degradation /
	// thermal throttling).
	slowdown float64

	// free is the stack of idle NPU thread indexes; its depth is the
	// classic free-thread count, the indexes name trace tracks.
	free   []int
	tracks []string // lazily built thread-index -> "islandI/coreC/tT"
	queue  *wfq.Scheduler
	hq     *wfq.Hierarchical // DispatchTenantWFQ only
	fifo   []*pending

	// tenantDone counts completions per tenant ID (DispatchTenantWFQ
	// isolation experiments read these; nil until first completion).
	tenantDone map[uint32]uint64

	// hostPath receives requests with no matching lambda ID (§4.1:
	// "sends the packet to the host OS"). Nil drops them.
	hostPath func(*Request)

	// warm is the per-core warm-flow LRU (WarmFlows > 0 only), indexed
	// by core = thread / ThreadsPerCore. Built lazily on first lookup;
	// flushed on crash and firmware swap (SRAM state does not survive
	// either).
	warm []*dispatch.LRU

	stats Stats

	// Free lists and pre-bound callbacks keep the per-request path
	// allocation-free: pending and wfq.Item structs recycle, and the
	// completion callbacks are method values created once here rather
	// than closures created per packet.
	pfree      []*pending
	ifree      []*wfq.Item
	completeFn func(any)
	preemptFn  func(any)
}

type pending struct {
	req  *Request
	done func(Response, error)

	// Preemption state: the response is computed functionally at first
	// dispatch; remaining tracks unserved cycles across time slices.
	started   bool
	resp      Response
	err       error
	remaining uint64

	// Tracing state: arrival (or requeue) time for queue-wait spans,
	// the occupied thread index, and the cycle split for attribution.
	waitSince   sim.Time
	thread      int
	instrCycles uint64
	stallCycles [numMemLevels]uint64
}

// New constructs a NIC bound to the simulation.
func New(s *sim.Sim, cfg Config) (*NIC, error) {
	if cfg.NIC.NPUThreads() <= 0 {
		return nil, errors.New("nicsim: configuration has no NPU threads")
	}
	if cfg.Dispatch == 0 {
		cfg.Dispatch = DispatchUniform
	}
	q, err := wfq.New(1)
	if err != nil {
		return nil, err
	}
	var hq *wfq.Hierarchical
	if cfg.Dispatch == DispatchTenantWFQ {
		hq, err = wfq.NewHierarchical(1, 1)
		if err != nil {
			return nil, err
		}
		for tid, w := range cfg.TenantWeights {
			if err := hq.SetTenantWeight(tid, w); err != nil {
				return nil, fmt.Errorf("nicsim: tenant %d: %w", tid, err)
			}
		}
	}
	threads := cfg.NIC.NPUThreads()
	free := make([]int, threads)
	for i := range free {
		// Stack ordered so thread 0 is dispatched first.
		free[i] = threads - 1 - i
	}
	n := &NIC{
		sim:   s,
		cfg:   cfg,
		free:  free,
		queue: q,
		hq:    hq,
	}
	n.completeFn = n.complete
	n.preemptFn = n.preempt
	return n, nil
}

// getPending pops a recycled pending or allocates one, fully
// reinitialized for the request.
func (n *NIC) getPending(req *Request, done func(Response, error)) *pending {
	var p *pending
	if l := len(n.pfree); l > 0 {
		p = n.pfree[l-1]
		n.pfree = n.pfree[:l-1]
		*p = pending{}
	} else {
		p = &pending{}
	}
	p.req, p.done, p.waitSince = req, done, n.sim.Now()
	return p
}

// putPending recycles a pending whose lifecycle has fully ended.
func (n *NIC) putPending(p *pending) {
	p.req, p.done = nil, nil
	p.resp = Response{}
	p.err = nil
	n.pfree = append(n.pfree, p)
}

func (n *NIC) getItem() *wfq.Item {
	if l := len(n.ifree); l > 0 {
		it := n.ifree[l-1]
		n.ifree = n.ifree[:l-1]
		return it
	}
	return &wfq.Item{}
}

func (n *NIC) putItem(it *wfq.Item) {
	it.Payload = nil
	n.ifree = append(n.ifree, it)
}

// track returns the trace-track name for an NPU thread index, shaped
// by the island/core topology ("island2/core5/t1").
func (n *NIC) track(thread int) string {
	if n.tracks == nil {
		n.tracks = make([]string, n.cfg.NIC.NPUThreads())
	}
	if thread < 0 || thread >= len(n.tracks) {
		return "npu"
	}
	if n.tracks[thread] == "" {
		perCore := n.cfg.NIC.ThreadsPerCore
		perIsland := n.cfg.NIC.CoresPerIsland * perCore
		if perCore <= 0 || perIsland <= 0 {
			n.tracks[thread] = fmt.Sprintf("t%d", thread)
		} else {
			n.tracks[thread] = fmt.Sprintf("island%d/core%d/t%d",
				thread/perIsland, (thread%perIsland)/perCore, thread%perCore)
		}
	}
	return n.tracks[thread]
}

// warmTouch records a warm-state access for the flow on the executing
// thread's core and reports whether it was resident (a warm hit).
func (n *NIC) warmTouch(thread int, flow uint64) bool {
	perCore := n.cfg.NIC.ThreadsPerCore
	if perCore <= 0 {
		perCore = 1
	}
	if n.warm == nil {
		cores := (n.cfg.NIC.NPUThreads() + perCore - 1) / perCore
		n.warm = make([]*dispatch.LRU, cores)
	}
	core := thread / perCore
	if core < 0 || core >= len(n.warm) {
		return false
	}
	if n.warm[core] == nil {
		n.warm[core] = dispatch.NewLRU(n.cfg.WarmFlows)
	}
	return n.warm[core].Touch(flow)
}

// flushWarm discards all per-core warm state (crash or firmware swap:
// on-NIC SRAM does not survive either).
func (n *NIC) flushWarm() { n.warm = nil }

// SetHostPath installs the handler for unmatched requests.
func (n *NIC) SetHostPath(fn func(*Request)) { n.hostPath = fn }

// Stats returns a copy of the NIC counters.
func (n *NIC) Stats() Stats { return n.stats }

// MemoryUsed reports the loaded firmware's NIC memory footprint in
// bytes (Table 3's "NIC Memory" row).
func (n *NIC) MemoryUsed() int {
	if n.fw == nil {
		return 0
	}
	total := 0
	for _, b := range n.fw.MemoryBytes() {
		total += b
	}
	return total
}

// Load validates and installs a firmware image. If firmware is already
// running and the configuration models swap downtime, the NIC is down
// for that period and arriving requests are dropped (§7 "hot swapping
// workloads").
func (n *NIC) Load(fw Program) error {
	if got, limit := fw.StaticInstructions(), n.cfg.NIC.InstrStorePerCore; got > limit {
		return fmt.Errorf("%w: %d > %d", ErrProgramTooLarge, got, limit)
	}
	mem := fw.MemoryBytes()
	if mem[MemCTM] > n.cfg.NIC.CTMPerIsland*n.cfg.NIC.Islands {
		return fmt.Errorf("%w: CTM demand %d", ErrMemoryExceeded, mem[MemCTM])
	}
	if mem[MemIMEM] > n.cfg.NIC.IMEMBytes {
		return fmt.Errorf("%w: IMEM demand %d", ErrMemoryExceeded, mem[MemIMEM])
	}
	if mem[MemEMEM] > n.cfg.NIC.EMEMBytes {
		return fmt.Errorf("%w: EMEM demand %d", ErrMemoryExceeded, mem[MemEMEM])
	}
	if n.fw != nil {
		n.flushWarm() // new match tables: prior warm state is void
	}
	swapping := n.fw != nil && n.cfg.FirmwareSwapDowntime > 0
	n.fw = fw
	if swapping {
		n.down = true
		n.sim.Schedule(n.cfg.FirmwareSwapDowntime, func() { n.down = false })
	}
	return nil
}

// Crash fail-stops the NIC (the failure model healthd's detector is
// built for): arriving requests are black-holed — dropped with no
// completion callback, so callers see only silence and must rely on
// timeouts — queued work is discarded, and in-flight completions are
// suppressed. Occupied threads still drain through the normal finish
// path, so Recover restores full capacity.
func (n *NIC) Crash() {
	n.crashed = true
	n.flushWarm()
	for {
		p := n.dequeue()
		if p == nil {
			break
		}
		n.stats.Dropped++
		n.putPending(p)
	}
}

// Recover brings a crashed NIC back with its loaded firmware intact.
func (n *NIC) Recover() { n.crashed = false }

// Crashed reports the fail-stop state.
func (n *NIC) Crashed() bool { return n.crashed }

// SetSlowdown degrades the NIC's service rate: service times are
// stretched by factor (island degradation, thermal throttling).
// Factors <= 1 restore full speed. Trace spans keep nominal cycle
// attribution; only the scheduled completion moves.
func (n *NIC) SetSlowdown(factor float64) { n.slowdown = factor }

// scaled applies the degradation factor to a service time.
func (n *NIC) scaled(d sim.Time) sim.Time {
	if n.slowdown > 1 {
		return sim.Time(float64(d) * n.slowdown)
	}
	return d
}

// Inject delivers a request to the NIC at the current simulation time.
// done fires (in virtual time) when the response leaves the NIC. A nil
// done is allowed for fire-and-forget traffic.
func (n *NIC) Inject(req *Request, done func(Response, error)) {
	if n.fw == nil {
		n.stats.Dropped++
		if done != nil {
			done(Response{}, ErrNoFirmware)
		}
		return
	}
	if n.crashed {
		// Fail-stop: the request vanishes. No completion fires — the
		// caller's timeout is the only failure signal, exactly as with a
		// dead NIC on a real wire.
		n.stats.Dropped++
		return
	}
	if n.down {
		n.stats.Dropped++
		if done != nil {
			done(Response{}, ErrNICDown)
		}
		return
	}
	if !n.fw.Handles(req.LambdaID) {
		n.stats.SentToHost++
		// A boundary handoff: the request leaves the NIC for the host
		// path, marked on the same placement stage that traces engine-
		// driven migrations (placement.migrate).
		req.Trace.Mark(obs.StagePlacement, "placement", "host-fallback", n.sim.Now())
		if n.hostPath != nil {
			n.hostPath(req)
		}
		if done != nil {
			done(Response{}, fmt.Errorf("nicsim: no lambda %d: sent to host", req.LambdaID))
		}
		return
	}
	p := n.getPending(req, done)
	if len(n.free) > 0 {
		p.thread = n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		n.start(p)
		return
	}
	n.enqueue(p)
}

// tenantOf classifies a lambda to its tenant (DispatchTenantWFQ).
func (n *NIC) tenantOf(lambdaID uint32) uint32 {
	if n.cfg.TenantOf != nil {
		return n.cfg.TenantOf(lambdaID)
	}
	return 0
}

func (n *NIC) enqueue(p *pending) {
	p.waitSince = n.sim.Now()
	switch n.cfg.Dispatch {
	case DispatchWFQ, DispatchTenantWFQ:
		size := uint64(len(p.req.Payload))
		if size == 0 {
			size = 64
		}
		it := n.getItem()
		it.Flow, it.Size, it.Payload = p.req.LambdaID, size, p
		if n.cfg.Dispatch == DispatchTenantWFQ {
			n.hq.Enqueue(n.tenantOf(p.req.LambdaID), it)
		} else {
			n.queue.Enqueue(it)
		}
	default:
		n.fifo = append(n.fifo, p)
	}
	if d := n.queueDepth(); d > n.stats.MaxQueueDepth {
		n.stats.MaxQueueDepth = d
	}
}

func (n *NIC) queueDepth() int {
	depth := n.queue.Len() + len(n.fifo)
	if n.hq != nil {
		depth += n.hq.Len()
	}
	return depth
}

// start runs a request on an occupied thread. In the default
// run-to-completion mode (D1) the whole service time is served in one
// piece — no preemption, no context switch. In the ablation's
// preemptive mode the request runs one quantum at a time, paying a
// context-switch cost and requeueing between slices.
func (n *NIC) start(p *pending) {
	now := n.sim.Now()
	if tr := p.req.Trace; tr != nil && now > p.waitSince {
		tr.AddSpan(obs.StageQueue, "nic-scheduler", "", p.waitSince, now)
	}
	if !p.started {
		p.started = true
		p.resp, p.err = n.fw.Execute(p.req)
		cycles := n.cfg.NIC.ParseMatchCycles
		if pk := p.req.Packets; pk > 1 {
			// Multi-packet RPC: the NIC reorders/commits packets before
			// the lambda fires (§5 footnote: ~30 cycles per packet).
			cycles += uint64(pk) * n.cfg.NIC.ReorderCyclesPerPacket
		}
		p.instrCycles = cycles + p.resp.Stats.Instructions
		if n.cfg.WarmFlows > 0 && p.req.FlowKey != 0 {
			if n.warmTouch(p.thread, p.req.FlowKey) {
				n.stats.WarmHits++
			} else {
				n.stats.WarmMisses++
				p.instrCycles += n.cfg.ColdStartCycles
			}
		}
		p.stallCycles[MemLocal] = p.resp.Stats.MemAccesses[MemLocal] * n.cfg.NIC.LocalLatency
		p.stallCycles[MemCTM] = p.resp.Stats.MemAccesses[MemCTM] * n.cfg.NIC.CTMLatency
		p.stallCycles[MemIMEM] = p.resp.Stats.MemAccesses[MemIMEM] * n.cfg.NIC.IMEMLatency
		p.stallCycles[MemEMEM] = p.resp.Stats.MemAccesses[MemEMEM] * n.cfg.NIC.EMEMLatency
		p.remaining = p.instrCycles
		for _, c := range p.stallCycles {
			p.remaining += c
		}
	}
	quantum := n.cfg.QuantumCycles
	if n.cfg.Preemptive && quantum == 0 {
		quantum = 5000
	}
	if !n.cfg.Preemptive || p.remaining <= quantum {
		// Run to completion.
		n.stats.BusyCycles += p.remaining
		service := n.scaled(sim.CyclesToDuration(p.remaining, n.cfg.NIC.ClockHz))
		if p.req.Trace != nil {
			n.traceExecution(p, now)
		}
		p.remaining = 0
		n.sim.AfterArg(service, n.completeFn, p)
		return
	}
	// Serve one quantum, pay the switch, requeue behind other work.
	cs := n.cfg.ContextSwitchCycles
	if cs == 0 {
		cs = 500
	}
	n.stats.BusyCycles += quantum + cs
	n.stats.Preemptions++
	p.remaining -= quantum
	service := n.scaled(sim.CyclesToDuration(quantum+cs, n.cfg.NIC.ClockHz))
	if tr := p.req.Trace; tr != nil {
		tr.AddSpan(obs.StageExec, n.track(p.thread), "quantum", now, now+service)
	}
	n.sim.AfterArg(service, n.preemptFn, p)
}

// complete fires when a run-to-completion service interval ends. The
// pending is recycled before user code runs, so a completion that
// re-injects synchronously reuses it.
func (n *NIC) complete(arg any) {
	p := arg.(*pending)
	thread := p.thread
	if n.crashed {
		// The NIC died mid-service: the completion is lost, but the
		// thread is accounted free so Recover restores full capacity.
		n.stats.Dropped++
		n.putPending(p)
		n.finish(thread)
		return
	}
	done, resp, err := p.done, p.resp, p.err
	tenant := n.tenantOf(p.req.LambdaID)
	n.putPending(p)
	n.stats.Completed++
	if n.cfg.Dispatch == DispatchTenantWFQ {
		if n.tenantDone == nil {
			n.tenantDone = make(map[uint32]uint64)
		}
		n.tenantDone[tenant]++
	}
	if done != nil {
		done(resp, err)
	}
	n.finish(thread)
}

// TenantCompleted returns how many requests of one tenant have
// completed (DispatchTenantWFQ only; always 0 otherwise).
func (n *NIC) TenantCompleted(tenantID uint32) uint64 { return n.tenantDone[tenantID] }

// preempt fires when a preemptive time slice expires: the request
// requeues behind other work (ablation mode only).
func (n *NIC) preempt(arg any) {
	p := arg.(*pending)
	if n.crashed {
		n.stats.Dropped++
		n.putPending(p)
		n.finish(p.thread)
		return
	}
	thread := p.thread
	n.enqueue(p)
	n.finish(thread)
}

// traceExecution lays the run-to-completion service time out as
// contiguous sub-spans — instruction cycles first, then the stall time
// of each memory level — on the executing thread's track. Boundaries
// come from cumulative cycle counts so the sub-spans tile the service
// interval exactly, keeping per-request attribution additive.
func (n *NIC) traceExecution(p *pending, start sim.Time) {
	tr := p.req.Trace
	track := n.track(p.thread)
	hz := n.cfg.NIC.ClockHz
	segments := []struct {
		stage  obs.Stage
		cycles uint64
	}{
		{obs.StageExec, p.instrCycles},
		{obs.StageMemLMEM, p.stallCycles[MemLocal]},
		{obs.StageMemCTM, p.stallCycles[MemCTM]},
		{obs.StageMemIMEM, p.stallCycles[MemIMEM]},
		{obs.StageMemEMEM, p.stallCycles[MemEMEM]},
	}
	var cum uint64
	prev := start
	for _, seg := range segments {
		if seg.cycles == 0 {
			continue
		}
		cum += seg.cycles
		end := start + sim.CyclesToDuration(cum, hz)
		tr.AddSpan(seg.stage, track, "", prev, end)
		prev = end
	}
}

// finish releases the thread or immediately begins queued work on it.
func (n *NIC) finish(thread int) {
	if next := n.dequeue(); next != nil {
		next.thread = thread
		n.start(next)
		return
	}
	n.free = append(n.free, thread)
}

func (n *NIC) dequeue() *pending {
	if n.cfg.Dispatch == DispatchWFQ || n.cfg.Dispatch == DispatchTenantWFQ {
		var it *wfq.Item
		if n.cfg.Dispatch == DispatchTenantWFQ {
			it = n.hq.Dequeue()
		} else {
			it = n.queue.Dequeue()
		}
		if it == nil {
			return nil
		}
		p := it.Payload.(*pending)
		n.putItem(it)
		return p
	}
	// Uniform work-conserving hardware scheduler: FIFO drain.
	if len(n.fifo) == 0 {
		return nil
	}
	p := n.fifo[0]
	n.fifo[0] = nil
	n.fifo = n.fifo[1:]
	return p
}

// Utilization returns the fraction of total NPU thread-cycles spent
// busy over the elapsed virtual time.
func (n *NIC) Utilization() float64 {
	elapsed := n.sim.Now()
	if elapsed <= 0 {
		return 0
	}
	totalCycles := sim.DurationToCycles(elapsed, n.cfg.NIC.ClockHz) * uint64(n.cfg.NIC.NPUThreads())
	if totalCycles == 0 {
		return 0
	}
	return float64(n.stats.BusyCycles) / float64(totalCycles)
}
