package nicsim

import (
	"testing"

	"lambdanic/internal/sim"
)

func BenchmarkInjectDrainThousandRequests(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		n, err := New(s, testConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Load(image(1, fakeLambda{instr: 500, emem: 2})); err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 1000; r++ {
			n.Inject(&Request{LambdaID: 1}, nil)
		}
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
		if n.Stats().Completed != 1000 {
			b.Fatal("incomplete")
		}
	}
	b.ReportMetric(1000, "requests/iter")
}

func BenchmarkSchedulerSaturatedWFQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		cfg := smallConfig(4)
		cfg.Dispatch = DispatchWFQ
		n, err := New(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		img := &fakeImage{lambdas: map[uint32]fakeLambda{1: {instr: 1000}, 2: {instr: 100}}, static: 100}
		if err := n.Load(img); err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 500; r++ {
			n.Inject(&Request{LambdaID: uint32(r%2) + 1, Payload: make([]byte, 64)}, nil)
		}
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}
