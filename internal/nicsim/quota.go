package nicsim

import (
	"math"

	"lambdanic/internal/cluster"
	"lambdanic/internal/drf"
	"lambdanic/internal/tenant"
)

// DRF resource keys for NIC capacity: the dimensions a tenant quota
// can cap. Placement (internal/core) allocates replicas over these
// vectors keyed by tenant, so isolation is enforced before a single
// request hits the wire.
const (
	ResThreads = "threads" // NPU hardware threads
	ResInstr   = "instr"   // per-core instruction-store bytes
	ResIMEM    = "imem"    // on-chip internal memory bytes
	ResEMEM    = "emem"    // external memory bytes
	ResMemMB   = "memMB"   // host-side memory (fallback replicas)
)

// FleetResources builds the DRF capacity vector for a rack of `nics`
// identical NICs. Zero-valued hardware dimensions are omitted — DRF
// capacities must be positive, and demands never naming a key treat
// it as zero (the drf zero-demand-key semantics).
func FleetResources(cfg cluster.NICConfig, nics int) drf.Resources {
	if nics <= 0 {
		nics = 1
	}
	cap := drf.Resources{}
	if t := cfg.NPUThreads(); t > 0 {
		cap[ResThreads] = float64(t * nics)
	}
	if cfg.InstrStorePerCore > 0 {
		cap[ResInstr] = float64(cfg.InstrStorePerCore * nics)
	}
	if cfg.IMEMBytes > 0 {
		cap[ResIMEM] = float64(cfg.IMEMBytes * nics)
	}
	if cfg.EMEMBytes > 0 {
		cap[ResEMEM] = float64(cfg.EMEMBytes * nics)
	}
	return cap
}

// QuotaVector converts a tenant quota to the DRF resource caps it
// names; zero quota fields (unlimited) are omitted.
func QuotaVector(q tenant.Quota) drf.Resources {
	out := drf.Resources{}
	if q.NPUThreads > 0 {
		out[ResThreads] = q.NPUThreads
	}
	if q.InstrStoreBytes > 0 {
		out[ResInstr] = float64(q.InstrStoreBytes)
	}
	if q.IMEMBytes > 0 {
		out[ResIMEM] = float64(q.IMEMBytes)
	}
	if q.EMEMBytes > 0 {
		out[ResEMEM] = float64(q.EMEMBytes)
	}
	if q.MemoryMB > 0 {
		out[ResMemMB] = q.MemoryMB
	}
	return out
}

// MaxTasks computes how many replicas of per-task demand fit inside a
// tenant's quota vector: floor over each resource the quota names of
// quota/demand. Resources the quota does not name are unlimited; a
// quota capping a resource the demand does not consume does not bind.
// Returns 0 for "unlimited" (no quota dimension binds) so the result
// plugs straight into drf.SetLimit.
func MaxTasks(quota, demand drf.Resources) int {
	limit := math.MaxInt
	bound := false
	for k, q := range quota {
		d, ok := demand[k]
		if !ok || d <= 0 {
			continue
		}
		bound = true
		if n := int(q / d); n < limit {
			limit = n
		}
	}
	if !bound {
		return 0
	}
	return limit
}
