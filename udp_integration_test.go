package lambdanic

// Integration test running the full control plane over real loopback
// UDP sockets — the path the cmd/ daemons use — rather than the
// in-memory network: memcached substitute, worker, gateway, client.

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/autoscale"
	"lambdanic/internal/core"
	"lambdanic/internal/gateway"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

func udpListen(t *testing.T) net.PacketConn {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	return conn
}

func TestRealUDPCluster(t *testing.T) {
	// memcached substitute.
	mcConn := udpListen(t)
	mcSrv := kvstore.NewServer(kvstore.NewStore(), mcConn)
	defer mcSrv.Close()

	// Worker with a memcached client dependency.
	kvCliConn := udpListen(t)
	deps := &workloads.Deps{KV: kvstore.NewClient(kvCliConn, mcSrv.Addr())}
	wConn := udpListen(t)
	worker := core.NewWorker(wConn, deps)
	defer worker.Close()
	defer kvCliConn.Close()

	set := []*Workload{WebServer(), KVGetClient(), KVSetClient(), ImageTransformer(16, 16)}
	for _, w := range set {
		if err := worker.Install(w); err != nil {
			t.Fatal(err)
		}
	}

	// Gateway routing all workloads to the worker.
	gwConn := udpListen(t)
	gw := gateway.New(gwConn)
	defer gw.Close()
	for _, w := range set {
		gw.SetRoute(w.ID, []net.Addr{worker.Addr()})
	}

	// Client.
	cliConn := udpListen(t)
	cli := transport.NewEndpoint(cliConn, nil,
		transport.WithTimeout(500*time.Millisecond), transport.WithRetries(4))
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Web page over real sockets.
	resp, err := cli.Call(ctx, gw.Addr(), WebServer().ID, WebServer().MakeRequest(2))
	if err != nil {
		t.Fatalf("web over UDP: %v", err)
	}
	if !strings.Contains(string(resp), "lambda-nic page 2") {
		t.Errorf("web resp = %q", resp)
	}

	// KV set/get through the memcached substitute.
	if resp, err := cli.Call(ctx, gw.Addr(), KVSetClient().ID, KVSetClient().MakeRequest(3)); err != nil || string(resp) != "STORED" {
		t.Fatalf("kv set over UDP: %q/%v", resp, err)
	}
	if resp, err := cli.Call(ctx, gw.Addr(), KVGetClient().ID, KVGetClient().MakeRequest(3)); err != nil || string(resp) != "value-3" {
		t.Fatalf("kv get over UDP: %q/%v", resp, err)
	}

	// Multi-packet image transformation (fragmentation over UDP).
	img := ImageTransformer(16, 16)
	resp, err = cli.Call(ctx, gw.Addr(), img.ID, img.MakeRequest(0))
	if err != nil {
		t.Fatalf("image over UDP: %v", err)
	}
	if len(resp) != 16*16 {
		t.Errorf("image resp = %d bytes, want 256", len(resp))
	}

	if gw.Forwarded() < 4 {
		t.Errorf("gateway forwarded = %d", gw.Forwarded())
	}
}

// TestAutoscalerRescalesLiveDeployment closes the control loop: the
// autoscaler observes load, its decision becomes a placement update in
// the Raft store, and the gateway's watch repoints routes — while
// requests keep flowing.
func TestAutoscalerRescalesLiveDeployment(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Workers: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	web := WebServer()
	if err := d.Deploy(web); err != nil {
		t.Fatal(err)
	}
	// Start pinned to one worker.
	if err := d.Manager().RecordPlacement(web.Name, []string{"m2"}); err != nil {
		t.Fatal(err)
	}

	policy := autoscale.Policy{
		TargetPerReplica: 100,
		MinReplicas:      1,
		MaxReplicas:      3,
		UpThreshold:      1.2,
		DownThreshold:    0.4,
		Cooldown:         time.Millisecond,
		Smoothing:        1,
	}
	scaler, err := autoscale.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	scaler.Track(web.Name, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Overload: 350 req/s observed on one replica.
	if err := scaler.Observe(web.Name, 350, time.Second); err != nil {
		t.Fatal(err)
	}
	pool := []string{"m2", "m3", "m4"}
	for _, dec := range scaler.Decide(time.Now()) {
		if err := d.Manager().RecordPlacement(dec.Workload, pool[:dec.To]); err != nil {
			t.Fatal(err)
		}
	}
	if got := scaler.Replicas(web.Name); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
	// The gateway's watch repointed routes; requests flow to all three.
	for i := 0; i < 9; i++ {
		if _, err := d.Invoke(ctx, web.ID, web.MakeRequest(i)); err != nil {
			t.Fatalf("request %d after scale-up: %v", i, err)
		}
	}
	p, err := d.Manager().Placement(web.Name)
	if err != nil || len(p.Workers) != 3 {
		t.Fatalf("placement = %+v, %v", p, err)
	}
}
