// Package lambdanic is an open-source reproduction of "λ-NIC:
// Interactive Serverless Compute on Programmable SmartNICs" (Choi,
// Shahbaz, Prabhakar, Rosenblum — ICDCS 2020): a serverless framework
// that runs interactive lambdas entirely on an ASIC-based SmartNIC
// through the Match+Lambda programming abstraction.
//
// The package is a façade over the implementation packages:
//
//   - write lambdas against the Match+Lambda abstraction with the IR
//     Builder (the Micro-C stand-in) and LambdaSpec;
//   - Compose pairs lambdas with a synthesized parse+match stage;
//     Optimize applies the paper's three target-specific passes (lambda
//     coalescing, match reduction, memory stratification); Link
//     produces executable firmware;
//   - NewDeployment runs the full functional control plane — workload
//     manager, Raft-backed control store, gateway, workers, memcached
//     substitute — over an in-memory packet network or real UDP;
//   - NewSimulation builds discrete-event backends (λ-NIC SmartNIC,
//     bare-metal, container) for performance studies; the experiment
//     harness in cmd/lnic-bench regenerates every table and figure of
//     the paper's evaluation.
package lambdanic

import (
	"lambdanic/internal/backend"
	"lambdanic/internal/cluster"
	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
	"lambdanic/internal/mcl"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/workloads"
)

// Compiler and abstraction types (see internal/mcc and
// internal/matchlambda for full documentation).
type (
	// Builder composes IR functions with label-based control flow.
	Builder = mcc.Builder
	// Function is one compiled lambda function.
	Function = mcc.Function
	// Object is a named memory object in the lambda's flat address
	// space (design characteristic D2).
	Object = mcc.Object
	// Program is a composed Match+Lambda program.
	Program = mcc.Program
	// Executable is linked firmware runnable on the simulated NIC.
	Executable = mcc.Executable
	// PassResult is one optimizer step of the Figure 9 trajectory.
	PassResult = mcc.PassResult
	// LambdaSpec is one user lambda: entry, helpers, objects, headers.
	LambdaSpec = matchlambda.LambdaSpec
	// HeaderSpec declares an application header and its fields.
	HeaderSpec = matchlambda.HeaderSpec
	// FieldSpec maps payload bytes to a header slot.
	FieldSpec = matchlambda.FieldSpec
	// ComposeOptions tunes Match+Lambda composition.
	ComposeOptions = matchlambda.ComposeOptions
	// OptimizeConfig selects optimizer passes.
	OptimizeConfig = mcc.OptimizeConfig
	// LinkOptions tunes firmware linking.
	LinkOptions = mcc.LinkOptions
	// Workload is a benchmark lambda in NIC and native forms.
	Workload = workloads.Workload
	// Testbed is the modeled evaluation environment.
	Testbed = cluster.Testbed
	// Backend is a deploy-and-invoke execution target in simulation.
	Backend = backend.Backend
	// Result is one completed simulated request.
	Result = backend.Result
	// Usage is a backend's resource consumption (Table 3).
	Usage = backend.Usage
	// NICRequest is a request as the simulated NIC sees it.
	NICRequest = nicsim.Request
)

// Header field slots available to lambdas (OpHdrGet/OpHdrSet).
const (
	FieldWorkloadID = mcc.FieldWorkloadID
	FieldRequestID  = mcc.FieldRequestID
	FieldPayloadLen = mcc.FieldPayloadLen
	FieldArg0       = mcc.FieldArg0
	FieldArg1       = mcc.FieldArg1
)

// Lambda return status codes.
const (
	StatusDrop    = mcc.StatusDrop
	StatusForward = mcc.StatusForward
	StatusToHost  = mcc.StatusToHost
)

// Memory-placement pragmas (D2).
const (
	HintAuto = mcc.HintAuto
	HintHot  = mcc.HintHot
	HintCold = mcc.HintCold
)

// PayloadObject names the request payload pseudo-object usable as a
// bulk-operation source.
const PayloadObject = mcc.PayloadObject

// NewBuilder starts a lambda function.
func NewBuilder(name string) *Builder { return mcc.NewBuilder(name) }

// CompileSource compiles a lambda written in the restricted C-like
// source language (the Micro-C stand-in, §4.1) into a LambdaSpec. The
// function named entry becomes the lambda entry point; other functions
// become private helpers and `object` declarations become memory
// objects. See internal/mcl for the language reference.
func CompileSource(name string, id uint32, entry, src string, uses []string) (*LambdaSpec, error) {
	return mcl.CompileLambda(name, id, entry, src, uses)
}

// Compose pairs lambdas and the match stage into one naive
// Match+Lambda program (§4.1).
func Compose(specs []*LambdaSpec, opts ComposeOptions) (*Program, error) {
	return matchlambda.Compose(specs, opts)
}

// AllPasses enables every optimizer pass (§5.1).
func AllPasses() OptimizeConfig { return mcc.AllPasses() }

// Optimize applies the selected passes, returning the optimized program
// and the per-pass size trajectory (Figure 9).
func Optimize(p *Program, cfg OptimizeConfig) (*Program, []PassResult, error) {
	return mcc.Optimize(p, cfg)
}

// Link produces executable firmware from a composed program.
func Link(p *Program, opts LinkOptions) (*Executable, error) {
	return mcc.Link(p, opts)
}

// DefaultTestbed returns the paper's five-node evaluation testbed
// (§6.1.2): Netronome-style 56-core/448-thread SmartNICs, dual Xeon
// Gold 5117 hosts, a 10 G switch.
func DefaultTestbed() Testbed { return cluster.Default() }

// BenchmarkWorkloads returns the paper's benchmark set (§6.2): web
// server, two key-value clients, image transformer.
func BenchmarkWorkloads() []*Workload { return workloads.DefaultSet() }

// WebServer returns the web-server benchmark workload.
func WebServer() *Workload { return workloads.WebServer() }

// WebServerVariant returns a distinct web-server lambda with its own
// name, ID, and memory objects (the contention experiment of §6.3.2
// deploys three side by side).
func WebServerVariant(name string, id uint32) *Workload {
	return workloads.WebServerVariant(name, id)
}

// KVGetClient returns the memcached GET client workload.
func KVGetClient() *Workload { return workloads.KVGetClient() }

// KVSetClient returns the memcached SET client workload.
func KVSetClient() *Workload { return workloads.KVSetClient() }

// ImageTransformer returns the RGBA→grayscale workload for images up to
// width x height.
func ImageTransformer(width, height int) *Workload {
	return workloads.ImageTransformer(width, height)
}

// Simulation is a discrete-event performance environment hosting the
// three backends the paper compares.
type Simulation struct {
	sim     *sim.Sim
	testbed Testbed
}

// NewSimulation creates a simulation of the paper's testbed with a
// deterministic seed.
func NewSimulation(seed int64) *Simulation {
	return &Simulation{sim: sim.New(seed), testbed: cluster.Default()}
}

// NewSimulationWithTestbed uses a custom testbed model.
func NewSimulationWithTestbed(seed int64, tb Testbed) *Simulation {
	return &Simulation{sim: sim.New(seed), testbed: tb}
}

// LambdaNICBackend creates the SmartNIC backend (§4, §5).
func (s *Simulation) LambdaNICBackend() (Backend, error) {
	return backend.NewLambdaNIC(s.sim, s.testbed, nicsim.DispatchUniform)
}

// BareMetalBackend creates the Isolate-style bare-metal backend;
// singleCore restricts it to one hardware thread (Fig. 8).
func (s *Simulation) BareMetalBackend(singleCore bool) (Backend, error) {
	return backend.NewBareMetal(s.sim, s.testbed, singleCore)
}

// ContainerBackend creates the OpenFaaS/Docker-style backend.
func (s *Simulation) ContainerBackend() (Backend, error) {
	return backend.NewContainer(s.sim, s.testbed)
}

// Run drains the simulation's event queue.
func (s *Simulation) Run() error { return s.sim.RunUntilIdle() }

// Now returns the current virtual time.
func (s *Simulation) Now() sim.Time { return s.sim.Now() }
