module lambdanic

go 1.22
