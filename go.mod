module lambdanic

go 1.24
