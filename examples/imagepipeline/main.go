// Imagepipeline: the paper's data-intensive scenario (§6.2c). An RGBA
// image is transformed to grayscale two ways:
//
//  1. on the simulated SmartNIC, where the multi-packet request arrives
//     over the RDMA path into NIC memory and a lambda converts it with
//     the NIC's pixel assist (§4.2.1 D3), compared against the
//     container backend under the same discrete-event clock — showing
//     the paper's 3-5x advantage;
//  2. through the functional control plane (gateway + worker), where
//     the transformed bytes actually come back and are verified against
//     a native conversion.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"time"

	"lambdanic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imagepipeline:", err)
		os.Exit(1)
	}
}

const width, height = 256, 256

func run() error {
	img := lambdanic.ImageTransformer(width, height)
	payload := img.MakeRequest(1)
	fmt.Printf("image: %dx%d RGBA, %d KiB request payload\n", width, height, len(payload)/1024)

	// Phase 1: timing comparison on the simulated testbed.
	set := []*lambdanic.Workload{
		lambdanic.WebServer(), lambdanic.KVGetClient(), lambdanic.KVSetClient(),
		lambdanic.ImageTransformer(width, height),
	}
	measure := func(mk func(*lambdanic.Simulation) (lambdanic.Backend, error)) (time.Duration, error) {
		s := lambdanic.NewSimulation(3)
		b, err := mk(s)
		if err != nil {
			return 0, err
		}
		if err := b.Deploy(set); err != nil {
			return 0, err
		}
		// Warm request first (the paper measures warm lambdas).
		var lat time.Duration
		b.Invoke(img.ID, payload, func(lambdanic.Result) {})
		if err := s.Run(); err != nil {
			return 0, err
		}
		start := s.Now()
		b.Invoke(img.ID, payload, func(r lambdanic.Result) {
			if r.Err == nil {
				lat = time.Duration(s.Now() - start)
			}
		})
		if err := s.Run(); err != nil {
			return 0, err
		}
		return lat, nil
	}
	nicLat, err := measure(func(s *lambdanic.Simulation) (lambdanic.Backend, error) {
		return s.LambdaNICBackend()
	})
	if err != nil {
		return err
	}
	bareLat, err := measure(func(s *lambdanic.Simulation) (lambdanic.Backend, error) {
		return s.BareMetalBackend(false)
	})
	if err != nil {
		return err
	}
	contLat, err := measure(func(s *lambdanic.Simulation) (lambdanic.Backend, error) {
		return s.ContainerBackend()
	})
	if err != nil {
		return err
	}
	fmt.Println("simulated backends (one warm transformation):")
	fmt.Printf("  %-12s %v\n", "lambda-nic", nicLat)
	fmt.Printf("  %-12s %v  (%.1fx)\n", "bare-metal", bareLat, float64(bareLat)/float64(nicLat))
	fmt.Printf("  %-12s %v  (%.1fx)\n", "container", contLat, float64(contLat)/float64(nicLat))

	// Phase 2: functional pipeline with verification.
	d, err := lambdanic.NewDeployment(lambdanic.DeploymentConfig{Workers: 1, Seed: 9})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Deploy(img); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gray, err := d.Invoke(ctx, img.ID, payload)
	if err != nil {
		return err
	}
	want, err := img.Handle(payload, nil)
	if err != nil {
		return err
	}
	if !bytes.Equal(gray, want) {
		return fmt.Errorf("pipeline output differs from native conversion")
	}
	fmt.Printf("functional pipeline: %d grayscale bytes verified against native conversion\n", len(gray))
	return nil
}
