// Quickstart: write a custom lambda against the Match+Lambda
// abstraction, compile it with the paper's optimizer, and run it two
// ways — directly on simulated SmartNIC firmware and through the full
// functional control plane (gateway + workers).
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"lambdanic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Write a lambda in the IR (the Micro-C stand-in): an adder that
	// reads two numbers parsed from the request and emits their sum.
	b := lambdanic.NewBuilder("adder")
	b.HdrGet(1, lambdanic.FieldArg0)
	b.HdrGet(2, lambdanic.FieldArg1)
	b.Add(3, 1, 2)
	b.EmitByte(3)
	b.MovImm(4, lambdanic.StatusForward)
	b.Ret(4)
	entry := b.MustBuild()

	spec := &lambdanic.LambdaSpec{
		Name:  "adder",
		ID:    100,
		Entry: entry,
		Uses:  []string{"addreq"},
	}

	// 2. Compose with a synthesized parser for the request header, then
	// run the three target-specific optimizations (§5.1).
	prog, err := lambdanic.Compose([]*lambdanic.LambdaSpec{spec}, lambdanic.ComposeOptions{
		Headers: []lambdanic.HeaderSpec{{
			Name: "addreq",
			Fields: []lambdanic.FieldSpec{
				{Slot: lambdanic.FieldArg0, Offset: 0, Bytes: 1},
				{Slot: lambdanic.FieldArg1, Offset: 1, Bytes: 1},
			},
		}},
	})
	if err != nil {
		return err
	}
	opt, passes, err := lambdanic.Optimize(prog, lambdanic.AllPasses())
	if err != nil {
		return err
	}
	for _, p := range passes {
		fmt.Printf("  %-24s %4d instructions\n", p.Pass, p.Instructions)
	}

	// 3. Link and execute on the NIC firmware path.
	exe, err := lambdanic.Link(opt, lambdanic.LinkOptions{})
	if err != nil {
		return err
	}
	resp, err := exe.Execute(&lambdanic.NICRequest{
		LambdaID: 100,
		Payload:  []byte{19, 23},
		Packets:  1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("NIC firmware: 19 + 23 = %d "+
		"(%d instructions retired)\n", resp.Payload[0], resp.Stats.Instructions)

	// 4. Run the paper's web-server benchmark lambda through the full
	// functional control plane: manager, Raft control store, gateway,
	// two workers.
	d, err := lambdanic.NewDeployment(lambdanic.DeploymentConfig{Workers: 2, Seed: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	web := lambdanic.WebServer()
	if err := d.Deploy(web); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	page, err := d.Invoke(ctx, web.ID, web.MakeRequest(1))
	if err != nil {
		return err
	}
	fmt.Printf("gateway path: %q\n", trimZeros(page))
	return nil
}

func trimZeros(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
