// Microc: write a lambda in the restricted C-like source language (the
// paper's Micro-C, §4.1) instead of raw IR, compile it through the full
// pipeline — parser generation, match-stage composition, the three
// optimizer passes, static memory assertions — and run it on simulated
// SmartNIC firmware.
//
// The lambda is a tiny token-bucket rate limiter: each request spends
// one token; an empty bucket drops the request; tokens refill via an
// admin request — state that persists in NIC memory across requests
// (paper §4.1: "global objects that persist state across runs").
package main

import (
	"fmt"
	"os"

	"lambdanic"
)

const source = `
// Persistent token bucket in NIC memory.
object bucket[8];
object inited[8];

const ADMIN_REFILL = 255;
const CAPACITY = 3;

func rate_limiter() int {
	if (loadw(inited, 0) == 0) {
		storew(bucket, 0, CAPACITY);
		storew(inited, 0, 1);
	}
	var op int = hdr(7); // parsed request header: op byte

	if (op == ADMIN_REFILL) {
		storew(bucket, 0, CAPACITY);
		emitbyte('R');
		return STATUS_FORWARD;
	}

	var tokens int = loadw(bucket, 0);
	if (tokens == 0) {
		emitbyte('X');       // rate limited
		return STATUS_DROP;
	}
	storew(bucket, 0, tokens - 1);
	emitbyte('0' + tokens);  // tokens remaining before this request
	return STATUS_FORWARD;
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "microc:", err)
		os.Exit(1)
	}
}

func run() error {
	spec, err := lambdanic.CompileSource("rate_limiter", 200, "rate_limiter", source,
		[]string{"limreq"})
	if err != nil {
		return err
	}
	prog, err := lambdanic.Compose([]*lambdanic.LambdaSpec{spec}, lambdanic.ComposeOptions{
		Headers: []lambdanic.HeaderSpec{{
			Name:   "limreq",
			Fields: []lambdanic.FieldSpec{{Slot: lambdanic.FieldArg0, Offset: 0, Bytes: 1}},
		}},
	})
	if err != nil {
		return err
	}
	opt, passes, err := lambdanic.Optimize(prog, lambdanic.AllPasses())
	if err != nil {
		return err
	}
	fmt.Println("compiled from C-like source through the Match+Lambda pipeline:")
	for _, p := range passes {
		fmt.Printf("  %-24s %4d instructions\n", p.Pass, p.Instructions)
	}
	exe, err := lambdanic.Link(opt, lambdanic.LinkOptions{})
	if err != nil {
		return err
	}

	send := func(op byte) string {
		resp, err := exe.Execute(&lambdanic.NICRequest{
			LambdaID: 200, Payload: []byte{op}, Packets: 1,
		})
		if err != nil {
			return "error: " + err.Error()
		}
		return string(resp.Payload)
	}

	fmt.Println("five requests against a 3-token bucket:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  request %d -> %q\n", i+1, send(0))
	}
	fmt.Printf("admin refill -> %q\n", send(255))
	fmt.Printf("request after refill -> %q\n", send(0))
	return nil
}
