// KVClient: the paper's key-value scenario (§6.2b). SET and GET client
// lambdas run on the workers and query the memcached substitute on the
// master node; the example writes a working set through the SET lambda,
// reads it back through the GET lambda, verifies read-your-writes, and
// prints the memcached server's protocol statistics.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"lambdanic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvclient:", err)
		os.Exit(1)
	}
}

func run() error {
	d, err := lambdanic.NewDeployment(lambdanic.DeploymentConfig{Workers: 2, Seed: 13})
	if err != nil {
		return err
	}
	defer d.Close()

	set := lambdanic.KVSetClient()
	get := lambdanic.KVGetClient()
	for _, w := range []*lambdanic.Workload{set, get} {
		if err := d.Deploy(w); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const keys = 25
	fmt.Printf("writing %d keys through the SET lambda...\n", keys)
	start := time.Now()
	for i := 0; i < keys; i++ {
		resp, err := d.Invoke(ctx, set.ID, set.MakeRequest(i))
		if err != nil {
			return fmt.Errorf("set %d: %w", i, err)
		}
		if string(resp) != "STORED" {
			return fmt.Errorf("set %d: unexpected response %q", i, resp)
		}
	}
	fmt.Printf("  done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("reading them back through the GET lambda...\n")
	misses := 0
	for i := 0; i < keys; i++ {
		resp, err := d.Invoke(ctx, get.ID, get.MakeRequest(i))
		if err != nil {
			return fmt.Errorf("get %d: %w", i, err)
		}
		want := fmt.Sprintf("value-%d", i)
		if string(resp) != want {
			misses++
			fmt.Printf("  key %d: got %q, want %q\n", i, resp, want)
		}
	}
	fmt.Printf("  read-your-writes: %d/%d keys verified\n", keys-misses, keys)

	// A GET for a key never written reports a miss.
	resp, err := d.Invoke(ctx, get.ID, get.MakeRequest(900))
	if err != nil {
		return err
	}
	fmt.Printf("  unwritten key 900 -> %q\n", resp)

	fwd, unrouted := d.GatewayStats()
	fmt.Printf("gateway: forwarded=%d unrouted=%d\n", fwd, unrouted)
	return nil
}
