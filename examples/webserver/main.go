// Webserver: the paper's interactive web-serving scenario (§6.2a).
// Three distinct web-server lambdas are deployed across two worker
// nodes behind the gateway — the same composition as the contention
// experiment (§6.3.2) — and a client fetches pages round-robin,
// printing per-lambda latency statistics. A second phase injects 20%
// packet loss to show the weakly-consistent delivery semantic (D3)
// retransmitting through it.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"lambdanic"
	"lambdanic/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webserver:", err)
		os.Exit(1)
	}
}

func run() error {
	d, err := lambdanic.NewDeployment(lambdanic.DeploymentConfig{Workers: 2, Seed: 7})
	if err != nil {
		return err
	}
	defer d.Close()

	// Three distinct web-server lambdas, like the paper's contention
	// setup.
	sites := []*lambdanic.Workload{}
	for i, name := range []string{"site_alpha", "site_beta", "site_gamma"} {
		w := lambdanicWebVariant(name, uint32(21+i))
		if err := d.Deploy(w); err != nil {
			return err
		}
		sites = append(sites, w)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fmt.Println("fetching 30 pages round-robin across 3 lambdas:")
	perSite := map[string]*metrics.Sample{}
	for i := 0; i < 30; i++ {
		w := sites[i%len(sites)]
		start := time.Now()
		resp, err := d.Invoke(ctx, w.ID, w.MakeRequest(i))
		if err != nil {
			return fmt.Errorf("fetch %d from %s: %w", i, w.Name, err)
		}
		if perSite[w.Name] == nil {
			perSite[w.Name] = &metrics.Sample{}
		}
		perSite[w.Name].AddDuration(time.Since(start))
		if i < 3 {
			fmt.Printf("  %-12s %q\n", w.Name, trimZeros(resp))
		}
	}
	for _, w := range sites {
		fmt.Printf("  %-12s %s\n", w.Name, perSite[w.Name].Summarize())
	}

	// Phase 2: the same workload through a lossy network.
	lossy, err := lambdanic.NewDeployment(lambdanic.DeploymentConfig{Workers: 2, Seed: 11, LossRate: 0.2})
	if err != nil {
		return err
	}
	defer lossy.Close()
	web := lambdanic.WebServer()
	if err := lossy.Deploy(web); err != nil {
		return err
	}
	ok := 0
	for i := 0; i < 20; i++ {
		if _, err := lossy.Invoke(ctx, web.ID, web.MakeRequest(i)); err == nil {
			ok++
		}
	}
	fmt.Printf("under 20%% packet loss: %d/20 requests completed "+
		"(weakly-consistent delivery retransmits, §4.2.1 D3)\n", ok)
	return nil
}

// lambdanicWebVariant builds a named web-server lambda through the
// public API.
func lambdanicWebVariant(name string, id uint32) *lambdanic.Workload {
	w := lambdanic.WebServerVariant(name, id)
	return w
}

func trimZeros(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
