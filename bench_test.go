package lambdanic

// One benchmark per table and figure of the paper's evaluation (§6).
// Each benchmark regenerates its experiment on the simulated testbed
// and reports the paper's headline quantities as custom metrics, so
// `go test -bench=. -benchmem` reproduces the entire evaluation.
// Full-size runs (experiments.Default) back EXPERIMENTS.md; the
// benchmarks use a reduced configuration per iteration to keep
// `-bench=.` runs fast while preserving every measured ratio.

import (
	"testing"

	"lambdanic/internal/experiments"
)

// benchConfig returns the per-iteration experiment size.
func benchConfig() experiments.Config {
	return experiments.Quick()
}

func BenchmarkTable1SmartNICComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 3 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkFigure6LatencyECDF(b *testing.B) {
	cfg := benchConfig()
	var series []experiments.LatencySeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	by := map[string]float64{}
	for _, s := range series {
		by[s.Workload+"/"+string(s.Backend)] = s.Summary.Mean
	}
	b.ReportMetric(by["web-server/bare-metal"]/by["web-server/lambda-nic"], "web-bare/nic-x")
	b.ReportMetric(by["web-server/container"]/by["web-server/lambda-nic"], "web-container/nic-x")
	b.ReportMetric(by["image-transformer/bare-metal"]/by["image-transformer/lambda-nic"], "img-bare/nic-x")
	b.ReportMetric(by["web-server/lambda-nic"]*1e6, "nic-web-latency-us")
}

func BenchmarkFigure7Throughput(b *testing.B) {
	cfg := benchConfig()
	var points []experiments.ThroughputPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	by := map[string]float64{}
	for _, p := range points {
		key := p.Workload + "/" + string(p.Backend)
		if p.Threads > 1 {
			by[key] = p.PerSecond
		}
	}
	b.ReportMetric(by["web-server/lambda-nic"], "nic-web-req/s")
	b.ReportMetric(by["web-server/lambda-nic"]/by["web-server/bare-metal"], "web-nic/bare-x")
	b.ReportMetric(by["key-value-client/lambda-nic"]/by["key-value-client/container"], "kv-nic/container-x")
}

func BenchmarkFigure8ContentionCDF(b *testing.B) {
	cfg := benchConfig()
	var results []experiments.ContentionResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.Figure8Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	by := map[experiments.BackendID]experiments.ContentionResult{}
	for _, r := range results {
		by[r.Backend] = r
	}
	nic := by[experiments.BackendLambdaNIC].Summary.Mean
	b.ReportMetric(by[experiments.BackendBareMetal].Summary.Mean/nic, "bare/nic-latency-x")
	b.ReportMetric(by[experiments.BackendBareMetal1Core].Summary.Mean/nic, "1core/nic-latency-x")
}

func BenchmarkTable2ContentionThroughput(b *testing.B) {
	cfg := benchConfig()
	var results []experiments.ContentionResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.Figure8Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		switch r.Backend {
		case experiments.BackendLambdaNIC:
			b.ReportMetric(r.PerSecond, "nic-req/s")
		case experiments.BackendBareMetal:
			b.ReportMetric(r.PerSecond, "bare-req/s")
		case experiments.BackendBareMetal1Core:
			b.ReportMetric(r.PerSecond, "bare1core-req/s")
		}
	}
}

func BenchmarkTable3ResourceUtilization(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Backend {
		case experiments.BackendLambdaNIC:
			b.ReportMetric(r.Usage.NICMemoryMiB, "nic-mem-MiB")
		case experiments.BackendBareMetal:
			b.ReportMetric(r.Usage.HostMemoryMiB, "bare-mem-MiB")
		case experiments.BackendContainer:
			b.ReportMetric(r.Usage.HostMemoryMiB, "container-mem-MiB")
		}
	}
}

func BenchmarkTable4StartupTimes(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Backend {
		case experiments.BackendLambdaNIC:
			b.ReportMetric(r.Startup.Seconds(), "nic-startup-s")
			b.ReportMetric(r.SizeMiB, "nic-size-MiB")
		case experiments.BackendContainer:
			b.ReportMetric(r.Startup.Seconds(), "container-startup-s")
		}
	}
}

func BenchmarkFigure9OptimizerEffectiveness(b *testing.B) {
	cfg := benchConfig()
	var results []PassResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	naive := float64(results[0].Instructions)
	final := float64(results[len(results)-1].Instructions)
	b.ReportMetric(naive, "naive-instr")
	b.ReportMetric(final, "optimized-instr")
	b.ReportMetric(100*(naive-final)/naive, "reduction-pct")
}

// Ablation benches for the design choices DESIGN.md calls out (D1-D3)
// and the §7 extensions.

func BenchmarkAblationRunToCompletion(b *testing.B) {
	cfg := benchConfig()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationRunToCompletion(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Variants[1].Value/r.Variants[0].Value, "preemption-tax-x")
}

func BenchmarkAblationWFQ(b *testing.B) {
	cfg := benchConfig()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationWFQ(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Variants[0].Value/r.Variants[1].Value, "wfq-p99-gain-x")
}

func BenchmarkAblationMemoryStratification(b *testing.B) {
	cfg := benchConfig()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationMemoryStratification(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Variants[0].Value/r.Variants[1].Value, "cycles-saved-x")
}

func BenchmarkAblationTransport(b *testing.B) {
	cfg := benchConfig()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationTransport(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Variants[1].Value/r.Variants[0].Value, "tcp-overhead-x")
}

func BenchmarkAblationGatewayOnNIC(b *testing.B) {
	cfg := benchConfig()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationGatewayOnNIC(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Variants[1].Value/r.Variants[0].Value, "nic-gateway-gain-x")
}

func BenchmarkAblationHitlessSwap(b *testing.B) {
	cfg := benchConfig()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AblationHitlessSwap(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Variants[0].Value, "downtime-drops")
}

func BenchmarkScaleOut(b *testing.B) {
	cfg := benchConfig()
	var points []experiments.ScaleOutPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.ScaleOut(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Workers == 4 {
			b.ReportMetric(p.PerSecond, "4worker-req/s")
			b.ReportMetric(100*p.Efficiency, "scaling-eff-pct")
		}
	}
}

func BenchmarkLoadLatencyCurve(b *testing.B) {
	cfg := benchConfig()
	var points []experiments.LoadPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.LoadLatencyCurve(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the knee ratio: bare-metal p99 at max vs min load.
	var bareFirst, bareLast float64
	for _, p := range points {
		if p.Backend == experiments.BackendBareMetal {
			if bareFirst == 0 {
				bareFirst = p.P99
			}
			bareLast = p.P99
		}
	}
	b.ReportMetric(bareLast/bareFirst, "bare-knee-x")
}

func BenchmarkSmartNICClasses(b *testing.B) {
	cfg := benchConfig()
	var results []experiments.NICClassResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.SmartNICClasses(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		switch r.Class {
		case "ASIC-based":
			b.ReportMetric(r.WebThroughput, "asic-req/s")
		case "SoC-based":
			b.ReportMetric(r.WebLatency.P50*1e6, "soc-p50-us")
		}
	}
}
