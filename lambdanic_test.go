package lambdanic

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestPublicAPICustomLambda exercises the whole compiler path through
// the public façade: build a lambda with the IR builder, compose,
// optimize, link, execute.
func TestPublicAPICustomLambda(t *testing.T) {
	// A counter lambda: increments a persistent word and emits it.
	b := NewBuilder("counter")
	b.MovImm(1, 0)
	b.LoadW(2, "state", 1, 0)
	b.MovImm(3, 1)
	b.Add(2, 2, 3)
	b.StoreW("state", 1, 0, 2)
	b.EmitByte(2)
	b.MovImm(4, StatusForward)
	b.Ret(4)
	entry := b.MustBuild()

	spec := &LambdaSpec{
		Name:    "counter",
		ID:      42,
		Entry:   entry,
		Objects: []*Object{{Name: "state", Size: 8, Hint: HintHot}},
	}
	prog, err := Compose([]*LambdaSpec{spec}, ComposeOptions{})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	opt, results, err := Optimize(prog, AllPasses())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(results) != 4 {
		t.Errorf("pass trajectory = %d entries", len(results))
	}
	exe, err := Link(opt, LinkOptions{})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	for want := byte(1); want <= 3; want++ {
		resp, err := exe.Execute(&NICRequest{LambdaID: 42, Packets: 1})
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if len(resp.Payload) != 1 || resp.Payload[0] != want {
			t.Errorf("counter = %v, want %d", resp.Payload, want)
		}
	}
}

func TestSimulationBackends(t *testing.T) {
	s := NewSimulation(7)
	nic, err := s.LambdaNICBackend()
	if err != nil {
		t.Fatal(err)
	}
	set := []*Workload{WebServer(), KVGetClient(), KVSetClient(), ImageTransformer(8, 8)}
	if err := nic.Deploy(set); err != nil {
		t.Fatal(err)
	}
	var got []byte
	nic.Invoke(WebServer().ID, WebServer().MakeRequest(0), func(r Result) {
		if r.Err != nil {
			t.Fatalf("Invoke: %v", r.Err)
		}
		got = r.Payload
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "lambda-nic page 0") {
		t.Errorf("response = %q", got)
	}
	if s.Now() <= 0 {
		t.Error("virtual time did not advance")
	}

	if _, err := s.BareMetalBackend(false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ContainerBackend(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultTestbedAndWorkloads(t *testing.T) {
	tb := DefaultTestbed()
	if tb.NIC.NPUThreads() != 448 {
		t.Errorf("NPUThreads = %d", tb.NIC.NPUThreads())
	}
	if len(BenchmarkWorkloads()) != 4 {
		t.Error("BenchmarkWorkloads wrong")
	}
}

func TestDeploymentEndToEnd(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Workers: 2, Seed: 3})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	for _, w := range []*Workload{WebServer(), KVGetClient(), KVSetClient()} {
		if err := d.Deploy(w); err != nil {
			t.Fatalf("Deploy %s: %v", w.Name, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if resp, err := d.Invoke(ctx, KVSetClient().ID, KVSetClient().MakeRequest(11)); err != nil || string(resp) != "STORED" {
		t.Fatalf("kv set: %q/%v", resp, err)
	}
	if resp, err := d.Invoke(ctx, KVGetClient().ID, KVGetClient().MakeRequest(11)); err != nil || string(resp) != "value-11" {
		t.Fatalf("kv get: %q/%v", resp, err)
	}
	resp, err := d.Invoke(ctx, WebServer().ID, WebServer().MakeRequest(1))
	if err != nil || !strings.Contains(string(resp), "page 1") {
		t.Fatalf("web: %q/%v", resp, err)
	}
	fwd, unrouted := d.GatewayStats()
	if fwd < 3 || unrouted != 0 {
		t.Errorf("gateway stats = %d/%d", fwd, unrouted)
	}
	// Placement visible through the manager's control store.
	p, err := d.Manager().Placement("web_server")
	if err != nil || len(p.Workers) != 2 {
		t.Errorf("placement = %+v, %v", p, err)
	}
}

func TestDeploymentSurvivesPacketLoss(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Workers: 1, Seed: 5, LossRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Deploy(WebServer()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		resp, err := d.Invoke(ctx, WebServer().ID, WebServer().MakeRequest(i))
		if err != nil {
			t.Fatalf("request %d under loss: %v", i, err)
		}
		if !strings.Contains(string(resp), "lambda-nic page") {
			t.Errorf("request %d corrupt: %q", i, resp)
		}
	}
}

func TestDeploymentMetrics(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Workers: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	web := WebServer()
	if err := d.Deploy(web); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := d.Invoke(ctx, web.ID, web.MakeRequest(i)); err != nil {
			t.Fatal(err)
		}
	}
	out := d.Metrics().Render()
	for _, want := range []string{
		"lnic_gateway_forwarded_total 5",
		`lnic_worker_requests_total{workload="web_server"} 5`,
		"lnic_worker_latency_seconds_count 5",
		"lnic_gateway_upstream_latency_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestDeploymentSelfHealing(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{
		Workers:        3,
		Seed:           9,
		Health:         true,
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	web := WebServer()
	if err := d.Deploy(web); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := d.Invoke(ctx, web.ID, web.MakeRequest(0)); err != nil {
		t.Fatal(err)
	}
	if n := d.Gateway().LiveWorkers(); n != 3 {
		t.Fatalf("live workers = %d, want 3", n)
	}

	// Crash-stop worker 0 (m2): transport silent, heartbeats stop.
	if err := d.KillWorker(0); err != nil {
		t.Fatal(err)
	}
	// healthd must declare it dead, evict it from placements, and
	// shrink the gateway's routes. The detection bound is asserted
	// deterministically in internal/healthd and the chaos experiment;
	// here the wall-clock loop just has to converge.
	deadline := time.Now().Add(30 * time.Second)
	for d.Gateway().LiveWorkers() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("gateway still routes %d workers; detector: %+v",
				d.Gateway().LiveWorkers(), d.Health().Snapshot(0))
		}
		time.Sleep(5 * time.Millisecond)
	}
	p, err := d.Manager().Placement(web.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range p.Workers {
		if w == "m2" {
			t.Fatalf("dead worker still placed: %+v", p)
		}
	}
	// Service remains available on the survivors.
	for i := 0; i < 5; i++ {
		resp, err := d.Invoke(ctx, web.ID, web.MakeRequest(i))
		if err != nil {
			t.Fatalf("request %d after eviction: %v", i, err)
		}
		if !strings.Contains(string(resp), "lambda-nic page") {
			t.Errorf("request %d corrupt: %q", i, resp)
		}
	}

	// A restarted worker's next heartbeat revives it in the detector.
	if err := d.RestartWorker(0); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for d.Health().Status("m2") != 0 { // healthd.StatusAlive
		if time.Now().After(deadline) {
			t.Fatalf("restarted worker never revived; detector: %+v", d.Health().Snapshot(0))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDeploymentSurvivesWorkerCrash(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Workers: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	web := WebServer()
	if err := d.Deploy(web); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Prime the pipeline.
	if _, err := d.Invoke(ctx, web.ID, web.MakeRequest(0)); err != nil {
		t.Fatal(err)
	}
	// Crash one worker: the gateway's failover keeps the lambda served
	// by the survivor.
	if err := d.workers[0].Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		resp, err := d.Invoke(ctx, web.ID, web.MakeRequest(i))
		if err != nil {
			t.Fatalf("request %d after worker crash: %v", i, err)
		}
		if !strings.Contains(string(resp), "lambda-nic page") {
			t.Errorf("request %d corrupt: %q", i, resp)
		}
	}
}
