// Command lnic-gateway runs the λ-NIC gateway (paper Fig. 2): it
// proxies client requests to worker daemons by workload ID with
// weakly-consistent delivery (timeout + retransmit) and flow-affine
// dispatch — each flow (client source × workload) is pinned to a
// worker on a seeded consistent-hash ring, so repeat requests land on
// the worker whose cores already hold that flow's state warm.
//
// Usage:
//
//	lnic-gateway -listen 127.0.0.1:8080 \
//	    -route "1=127.0.0.1:9000,127.0.0.1:9001" -route "4=127.0.0.1:9000" \
//	    [-rebalance 1s] [-rebalance-topk 8] [-imbalance 1.5] \
//	    [-metrics :9101] [-pprof :9111] [-trace-out trace.json] \
//	    [-faults "drop=0.05,to=127.0.0.1:9000"] [-faults-seed N]
//
// -rebalance enables the elephant-flow migration loop: every period it
// reads per-worker load (the gateway's in-flight counts, or healthd's
// EWMA-smoothed report when deployed via the library), and re-pins the
// top-k highest-rate flows off workers whose load exceeds -imbalance ×
// the fleet mean onto underloaded ones. Mice are never migrated, so
// the warm-state win of pinning is preserved. 0 (the default) leaves
// pinning static.
//
// Each -route maps one workload ID to its worker addresses. -trace-out
// records every proxied request's lifecycle (upstream RPC attempts and
// retransmits) and writes a Chrome trace-event JSON file on shutdown.
// -faults installs a deterministic fault rule on the gateway socket
// (keys: drop, dup, reorder, delay, from, to, first, last, partition);
// scope it to one worker link with to=ADDR to rehearse a partial
// outage. Stop with SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"lambdanic/internal/faults"
	"lambdanic/internal/gateway"
	"lambdanic/internal/monitor"
	"lambdanic/internal/obs"
)

// routeFlags collects repeated -route flags.
type routeFlags []string

func (r *routeFlags) String() string { return strings.Join(*r, ";") }

func (r *routeFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lnic-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lnic-gateway", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "UDP address to serve on")
	var routes routeFlags
	fs.Var(&routes, "route", "workloadID=addr1,addr2 (repeatable)")
	metricsAddr := fs.String("metrics", "", "serve Prometheus-style metrics on this HTTP address")
	pprofAddr := fs.String("pprof", "", "serve Go runtime profiling (/debug/pprof/) on this HTTP address")
	traceOut := fs.String("trace-out", "", "write a Chrome trace of proxied requests to this file on shutdown")
	faultSpec := fs.String("faults", "", "fault rule for the gateway socket, e.g. \"drop=0.05,to=127.0.0.1:9000\"")
	faultSeed := fs.Int64("faults-seed", 42, "seed for deterministic fault decisions")
	rebalance := fs.Duration("rebalance", 0, "elephant-flow migration tick period (0 disables)")
	rebalanceTopK := fs.Int("rebalance-topk", 8, "elephants considered per workload each rebalance tick")
	imbalance := fs.Float64("imbalance", 1.5, "overload threshold as a multiple of mean worker load")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(routes) == 0 {
		return fmt.Errorf("at least one -route is required")
	}

	// A nil injector wraps connections as pass-throughs, so the
	// unfaulted hot path is untouched.
	var injector *faults.Injector
	if *faultSpec != "" {
		rules, err := faults.ParseRules(*faultSpec)
		if err != nil {
			return err
		}
		injector = faults.NewInjector(*faultSeed, rules...)
		fmt.Printf("lnic-gateway: fault rules installed: %+v\n", rules)
	}

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	gw := gateway.New(injector.WrapConn(conn, conn.LocalAddr().String()))
	defer gw.Close()

	var collector *obs.Collector
	if *traceOut != "" {
		// Create the file up front so a bad path fails at startup, not
		// after a long run when the trace would be lost.
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		f.Close()
		collector = obs.NewCollector(obs.WallClock())
		gw.EnableTracing(collector)
	}

	if *metricsAddr != "" {
		reg := monitor.NewRegistry()
		if err := gw.EnableMetrics(reg); err != nil {
			return err
		}
		srv := &http.Server{Addr: *metricsAddr, Handler: reg.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "lnic-gateway: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("lnic-gateway: metrics on http://%s/\n", *metricsAddr)
	}

	if *pprofAddr != "" {
		srv := &http.Server{Addr: *pprofAddr, Handler: monitor.PprofMux()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "lnic-gateway: pprof server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("lnic-gateway: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	for _, spec := range routes {
		id, addrs, err := parseRoute(spec)
		if err != nil {
			return err
		}
		gw.SetRoute(id, addrs)
		fmt.Printf("lnic-gateway: workload %d -> %v\n", id, addrs)
	}

	if *rebalance > 0 {
		stop := gw.StartRebalancer(gateway.RebalanceConfig{
			Every:          *rebalance,
			TopK:           *rebalanceTopK,
			ImbalanceRatio: *imbalance,
		})
		defer stop()
		fmt.Printf("lnic-gateway: elephant rebalancer every %v (top-%d, imbalance %.2fx)\n",
			*rebalance, *rebalanceTopK, *imbalance)
	}

	fmt.Printf("lnic-gateway: serving on %v\n", gw.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("lnic-gateway: forwarded=%d unrouted=%d\n", gw.Forwarded(), gw.Unrouted())
	if collector != nil {
		reqs := collector.Requests()
		if err := obs.WriteChromeTraceFile(*traceOut, reqs); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("lnic-gateway: wrote Chrome trace (%d requests) to %s\n", len(reqs), *traceOut)
	}
	return nil
}

func parseRoute(spec string) (uint32, []net.Addr, error) {
	idPart, addrPart, ok := strings.Cut(spec, "=")
	if !ok {
		return 0, nil, fmt.Errorf("route %q: want id=addr,addr", spec)
	}
	id, err := strconv.ParseUint(idPart, 10, 32)
	if err != nil {
		return 0, nil, fmt.Errorf("route %q: bad workload id: %w", spec, err)
	}
	var addrs []net.Addr
	for _, a := range strings.Split(addrPart, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		udp, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return 0, nil, fmt.Errorf("route %q: %w", spec, err)
		}
		addrs = append(addrs, udp)
	}
	if len(addrs) == 0 {
		return 0, nil, fmt.Errorf("route %q: no worker addresses", spec)
	}
	return uint32(id), addrs, nil
}
