package main

import (
	"strings"
	"testing"
)

func TestParseRoute(t *testing.T) {
	id, addrs, err := parseRoute("7=127.0.0.1:9000,127.0.0.1:9001")
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || len(addrs) != 2 {
		t.Errorf("id=%d addrs=%v", id, addrs)
	}
	if addrs[0].String() != "127.0.0.1:9000" {
		t.Errorf("addr = %v", addrs[0])
	}
}

func TestParseRouteErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"noequals", "want id=addr"},
		{"x=127.0.0.1:9000", "bad workload id"},
		{"1=", "no worker addresses"},
		{"1=not a real : addr :", "route"},
	}
	for _, tc := range cases {
		if _, _, err := parseRoute(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseRoute(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestRunRequiresRoutes(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}); err == nil {
		t.Error("run without routes succeeded")
	}
}

func TestRunRejectsBadFaultRule(t *testing.T) {
	if err := run([]string{"-route", "1=127.0.0.1:9000", "-faults", "bogus"}); err == nil {
		t.Error("bad fault rule accepted")
	}
}
