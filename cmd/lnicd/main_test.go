package main

import "testing"

// run blocks on signals once serving, so tests cover the validation
// paths that return before that point.

func TestRunRejectsUnknownWorkload(t *testing.T) {
	err := run([]string{"-listen", "127.0.0.1:0", "-workloads", "bogus"})
	if err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunRejectsKVWithoutMemcached(t *testing.T) {
	err := run([]string{"-listen", "127.0.0.1:0", "-workloads", "kvget"})
	if err == nil {
		t.Error("kv workload without memcached accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBadMemcachedAddress(t *testing.T) {
	err := run([]string{"-listen", "127.0.0.1:0", "-memcached", "not:a:real:addr:at:all"})
	if err == nil {
		t.Error("bad memcached address accepted")
	}
}

func TestRunRejectsBadFaultRule(t *testing.T) {
	if err := run([]string{"-faults", "drop=lots"}); err == nil {
		t.Error("bad fault rule accepted")
	}
}
