// Command lnicd is a λ-NIC worker daemon: it serves the benchmark
// lambdas over the λ-NIC wire protocol on a UDP socket, dispatching by
// the workload ID the gateway stamps into each request (the functional
// twin of the NIC's match stage).
//
// Usage:
//
//	lnicd -listen 127.0.0.1:9000 [-memcached 127.0.0.1:11211] \
//	      [-workloads web,kvget,kvset,image] [-serve-memcached :11211] \
//	      [-metrics :9100] [-pprof :9110] [-trace-out trace.json] \
//	      [-faults "drop=0.05,delay=2ms"] [-faults-seed N]
//
// The key-value client lambdas require -memcached (or an embedded
// server via -serve-memcached). -trace-out records every served
// request's lifecycle and writes a Chrome trace-event JSON file on
// shutdown. -faults installs a deterministic fault rule on the serving
// socket (keys: drop, dup, reorder, delay, from, to, first, last,
// partition) for resilience testing against a real deployment. Stop
// with SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lambdanic/internal/core"
	"lambdanic/internal/faults"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/monitor"
	"lambdanic/internal/obs"
	"lambdanic/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lnicd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lnicd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9000", "UDP address to serve lambdas on")
	memcached := fs.String("memcached", "", "address of the memcached-substitute server")
	serveMemcached := fs.String("serve-memcached", "", "also run a memcached-substitute server on this address")
	names := fs.String("workloads", "web,kvget,kvset,image", "comma-separated lambdas to install")
	imgW := fs.Int("image-width", workloads.DefaultImageWidth, "image transformer max width")
	imgH := fs.Int("image-height", workloads.DefaultImageHeight, "image transformer max height")
	metricsAddr := fs.String("metrics", "", "serve Prometheus-style metrics on this HTTP address")
	pprofAddr := fs.String("pprof", "", "serve Go runtime profiling (/debug/pprof/) on this HTTP address")
	traceOut := fs.String("trace-out", "", "write a Chrome trace of served requests to this file on shutdown")
	faultSpec := fs.String("faults", "", "fault rule for the serving socket, e.g. \"drop=0.05,delay=2ms\"")
	faultSeed := fs.Int64("faults-seed", 42, "seed for deterministic fault decisions")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// A nil injector wraps connections as pass-throughs, so the
	// unfaulted hot path is untouched.
	var injector *faults.Injector
	if *faultSpec != "" {
		rules, err := faults.ParseRules(*faultSpec)
		if err != nil {
			return err
		}
		injector = faults.NewInjector(*faultSeed, rules...)
		fmt.Printf("lnicd: fault rules installed: %+v\n", rules)
	}

	var kvTable *kvstore.Table
	if *serveMemcached != "" {
		mcConn, err := net.ListenPacket("udp", *serveMemcached)
		if err != nil {
			return fmt.Errorf("memcached listen: %w", err)
		}
		// The store mirrors into an EMEM-style table so the colocated
		// worker serves GETs over the one-sided fast path (counted in
		// lnic_worker_bypass_total / lnicctl top's 1SIDED/S column).
		store := kvstore.NewStore()
		kvTable = kvstore.NewTable(kvstore.DefaultSlots)
		store.SetMirror(kvTable)
		srv := kvstore.NewServer(store, mcConn)
		defer srv.Close()
		fmt.Printf("lnicd: memcached substitute on %v\n", srv.Addr())
		if *memcached == "" {
			*memcached = srv.Addr().String()
		}
	}

	deps := &workloads.Deps{KVTable: kvTable}
	if *memcached != "" {
		addr, err := net.ResolveUDPAddr("udp", *memcached)
		if err != nil {
			return fmt.Errorf("memcached address: %w", err)
		}
		kvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("kv client socket: %w", err)
		}
		defer kvConn.Close()
		deps.KV = kvstore.NewClient(kvConn, addr)
	}

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	worker := core.NewWorker(injector.WrapConn(conn, conn.LocalAddr().String()), deps)
	defer worker.Close()

	var collector *obs.Collector
	if *traceOut != "" {
		// Create the file up front so a bad path fails at startup, not
		// after a long run when the trace would be lost.
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		f.Close()
		collector = obs.NewCollector(obs.WallClock())
		worker.EnableTracing(collector)
	}

	if *metricsAddr != "" {
		reg := monitor.NewRegistry()
		if err := worker.EnableMetrics(reg); err != nil {
			return err
		}
		srv := &http.Server{Addr: *metricsAddr, Handler: reg.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "lnicd: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("lnicd: metrics on http://%s/\n", *metricsAddr)
	}

	if *pprofAddr != "" {
		srv := &http.Server{Addr: *pprofAddr, Handler: monitor.PprofMux()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "lnicd: pprof server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("lnicd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	available := map[string]*workloads.Workload{
		"web":   workloads.WebServer(),
		"kvget": workloads.KVGetClient(),
		"kvset": workloads.KVSetClient(),
		"image": workloads.ImageTransformer(*imgW, *imgH),
	}
	for _, name := range strings.Split(*names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, ok := available[name]
		if !ok {
			return fmt.Errorf("unknown workload %q (want web, kvget, kvset, image)", name)
		}
		if (name == "kvget" || name == "kvset") && deps.KV == nil {
			return fmt.Errorf("workload %q needs -memcached or -serve-memcached", name)
		}
		if err := worker.Install(w); err != nil {
			return err
		}
		fmt.Printf("lnicd: installed %s (workload id %d)\n", w.Name, w.ID)
	}

	fmt.Printf("lnicd: serving on %v\n", worker.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("lnicd: shutting down")
	if collector != nil {
		reqs := collector.Requests()
		if err := obs.WriteChromeTraceFile(*traceOut, reqs); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("lnicd: wrote Chrome trace (%d requests) to %s\n", len(reqs), *traceOut)
	}
	return nil
}
