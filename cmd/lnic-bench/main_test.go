package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	// Fast experiments run end-to-end through the CLI entry point.
	for _, exp := range []string{"table1", "table4", "fig9"} {
		if err := run([]string{"-quick", "-experiment", exp}); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunChaosShort(t *testing.T) {
	// The CI smoke target: short chaos run plus the marked trace export.
	out := t.TempDir() + "/chaos.json"
	if err := run([]string{"-short", "-experiment", "chaos", "-trace-out", out}); err != nil {
		t.Fatalf("run(chaos -short): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("bad flag accepted")
	}
}
