package main

import (
	"encoding/json"
	"os"
	"testing"

	"lambdanic/internal/benchio"
)

func TestRunSingleExperiments(t *testing.T) {
	// Fast experiments run end-to-end through the CLI entry point.
	for _, exp := range []string{"table1", "table4", "fig9"} {
		if err := run([]string{"-quick", "-experiment", exp}); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunChaosShort(t *testing.T) {
	// The CI smoke target: short chaos run plus the marked trace export.
	out := t.TempDir() + "/chaos.json"
	if err := run([]string{"-short", "-experiment", "chaos", "-trace-out", out}); err != nil {
		t.Fatalf("run(chaos -short): %v", err)
	}
}

func TestRunRPCBenchQuick(t *testing.T) {
	// The CI benchmark target: quick rpcbench run plus the JSON report.
	out := t.TempDir() + "/BENCH_rpc.json"
	if err := run([]string{"-quick", "-experiment", "rpcbench", "-bench-out", out}); err != nil {
		t.Fatalf("run(rpcbench -quick): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchio.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_rpc.json not valid JSON: %v", err)
	}
	if len(rep.Results) == 0 {
		t.Error("report has no results")
	}
}

func TestRunLambdaBenchQuick(t *testing.T) {
	// The CI benchmark target: quick lambdabench run plus the JSON report.
	out := t.TempDir() + "/BENCH_lambda.json"
	if err := run([]string{"-quick", "-experiment", "lambdabench", "-bench-out", out}); err != nil {
		t.Fatalf("run(lambdabench -quick): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchio.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_lambda.json not valid JSON: %v", err)
	}
	if len(rep.Results) != 6 {
		t.Errorf("report has %d results, want 6 (3 workloads x 2 engines)", len(rep.Results))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("bad flag accepted")
	}
}
