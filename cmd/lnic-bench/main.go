// Command lnic-bench regenerates the tables and figures of the λ-NIC
// paper's evaluation (§6) on the simulated testbed and prints them as
// text.
//
// Usage:
//
//	lnic-bench [-quick] [-short] [-seed N] [-kernel ladder|heap] [-parallel]
//	           [-experiment all|table1|fig6|fig7|fig8|table2|table3|table4|fig9|chaos|tenants|skew|boundary|rpcbench|lambdabench|simbench]
//	           [-trace-out trace.json] [-bench-out BENCH_rpc.json]
//	           [-bench-guard BENCH_sim_baseline.json] [-slo-out SLO_chaos.json]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -quick shrinks sample counts and the benchmark image for fast runs;
// the default configuration reproduces the numbers recorded in
// EXPERIMENTS.md. -trace-out writes the breakdown experiment's
// request-lifecycle trace as Chrome trace-event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev).
//
// -kernel selects the simulation event-queue kernel (default ladder;
// heap is the reference binary heap — results are bit-identical, only
// wall-clock speed differs). -parallel runs the experiments that have a
// multi-core path (scaleout, loadcurve, chaos) with per-NIC simulation
// domains under the conservative parallel coordinator; results are
// bit-identical to the serial runs. -cpuprofile and -memprofile write
// pprof profiles of the run.
//
// The chaos experiment (not part of "all") crash-stops a worker NIC
// under open-loop load and reports availability, error rate, and tail
// latency before/during/after the failure-detection loop evicts it.
// It also writes a windowed SLO error-budget report (availability and
// p99-latency objectives sampled each heartbeat) to -slo-out (default
// SLO_chaos.json). -short shrinks it to a smoke run; with -trace-out
// the request lifecycles plus the fault instants (as global markers)
// are exported.
//
// The tenants experiment (not part of "all") colocates an interactive
// tenant with a bursty batch tenant on a shared rack running
// tenant-weighted WFQ dispatch and per-tenant gateway admission, then
// checks the isolation bound: interactive p99 during the batch flood
// stays within bound and the error-budget burn returns to zero after.
// The run fails if the bound is violated. Per-tenant phase results go
// to -bench-out (default BENCH_tenants.json) and the interactive SLO
// timeline to -slo-out (default SLO_tenants.json). -short shrinks it
// to a smoke run; -parallel runs one simulation domain per NIC with
// bit-identical results.
//
// The rpcbench experiment (not part of "all") measures the real RPC
// data plane — not the simulated testbed — over memnet and loopback
// UDP, closed- and open-loop, and writes req/s, latency percentiles,
// and allocs/op to -bench-out (default BENCH_rpc.json).
//
// The lambdabench experiment (not part of "all") measures the lambda
// execution engines themselves in wall-clock time: the optimized paper
// firmware is linked once with the reference interpreter and once with
// the closure-compiled engine, and each paper workload is driven
// through both, writing ns/op and allocs/op per engine to -bench-out
// (default BENCH_lambda.json).
//
// The rdmabench experiment (not part of "all") measures the one-sided
// RDMA fast path in virtual time: KV GETs served by one-sided reads of
// the EMEM-resident table versus the lambda-invocation path, the
// throughput-versus-window scalability curve, and doorbell-batched
// large transfers versus the per-fragment path. The report goes to
// -bench-out (default BENCH_rdma.json); with -bench-guard the run
// fails if any row regressed more than 20% against the committed
// baseline. Virtual-clock rates are machine-independent, so the guard
// is meaningful on any host.
//
// The skew experiment (not part of "all") drives a Zipf-skewed flow
// population plus a mid-run flash crowd through three gateway dispatch
// policies on the simulated testbed — round-robin spraying, pure
// consistent-hash flow pinning, and pinning with elephant-flow
// migration off healthd load reports — over one identical pre-drawn
// arrival schedule. It reports p50/p99/p999, completion spread across
// workers, warm-hit rate from the per-core warm-state model, and
// migration count per policy, and fails unless pinned+mig beats
// round-robin on both p99 and warm-hit rate. Per-policy percentiles go
// to -bench-out (default BENCH_skew.json); with -bench-guard the run
// fails if any policy's p99 grew more than 25% against the committed
// baseline (virtual-clock latencies are machine-independent). -short
// shrinks it to a smoke run; -parallel runs one simulation domain per
// NIC with bit-identical results.
//
// The boundary experiment (not part of "all") replays a seeded diurnal
// load curve with a flash crowd through three placement policies —
// everything pinned to the NIC rack, everything pinned to the host
// fleet, and the dynamic placement engine that autoscales the NIC pool
// and migrates lambdas across the NIC/host boundary at runtime. It
// reports per-phase latency percentiles, NIC-core·time cost, and the
// migration/scale history, and fails unless the dynamic policy
// Pareto-dominates: tail latency no worse than the better static
// policy in every phase while burning strictly less NIC-core·time
// than the always-on rack. Per-policy and per-phase percentiles go to
// -bench-out (default BENCH_boundary.json); with -bench-guard the run
// fails if any row's p99 grew more than 25% against the committed
// baseline (virtual-clock latencies are machine-independent). -short
// shrinks it to a smoke run; -parallel runs one simulation domain per
// NIC plus one for the host with bit-identical results.
//
// The simbench experiment (not part of "all") measures the simulation
// kernel itself: single-thread events/sec for the ladder queue versus
// the binary heap (with and without event pooling), timeout-churn
// throughput, and the 16-NIC fleet packed into 1..16 parallel domains.
// The report goes to -bench-out (default BENCH_sim.json); with
// -bench-guard the run fails if any single-thread row regressed more
// than 20% against the committed baseline (rows are normalized to the
// same run's sched/heap reference, so the comparison is
// machine-independent).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"lambdanic/internal/benchio"
	"lambdanic/internal/experiments"
	"lambdanic/internal/obs"
	"lambdanic/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lnic-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lnic-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sample counts and image size")
	short := fs.Bool("short", false, "shrink the chaos experiment to a smoke run")
	seed := fs.Int64("seed", 42, "simulation seed")
	experiment := fs.String("experiment", "all",
		"which experiment to run: all, table1, fig6, fig7, fig8, table2, table3, table4, fig9, optimizer, scaleout, loadcurve, nicclasses, ablations, breakdown, chaos, tenants, skew, boundary, rpcbench, lambdabench, simbench, rdmabench")
	kernel := fs.String("kernel", "ladder",
		"simulation event-queue kernel: ladder or heap (bit-identical results)")
	parallel := fs.Bool("parallel", false,
		"run scaleout/loadcurve/chaos/tenants/skew/boundary with per-NIC parallel simulation domains")
	traceOut := fs.String("trace-out", "",
		"write the breakdown experiment's Chrome trace-event JSON to this file")
	benchOut := fs.String("bench-out", "",
		"write the benchmark experiment's JSON report to this file (default BENCH_rpc.json for rpcbench, BENCH_lambda.json for lambdabench, BENCH_sim.json for simbench, BENCH_rdma.json for rdmabench, BENCH_skew.json for skew, BENCH_boundary.json for boundary)")
	benchGuard := fs.String("bench-guard", "",
		"fail if the simbench/rdmabench/skew/boundary report regresses against this baseline JSON")
	sloOut := fs.String("slo-out", "",
		"write the chaos experiment's SLO error-budget report JSON to this file (default SLO_chaos.json)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	switch strings.ToLower(*kernel) {
	case "", "ladder":
		cfg.Kernel = sim.KernelLadder
	case "heap":
		cfg.Kernel = sim.KernelHeap
	default:
		return fmt.Errorf("unknown -kernel %q (want ladder or heap)", *kernel)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lnic-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lnic-bench: memprofile:", err)
			}
		}()
	}

	want := strings.ToLower(*experiment)
	ran := false
	out := func(s string) {
		fmt.Println(s)
		ran = true
	}

	if want == "all" || want == "table1" {
		out(experiments.RenderTable1(experiments.Table1()))
	}
	if want == "all" || want == "fig6" {
		series, err := experiments.Figure6(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderFigure6(series))
	}
	if want == "all" || want == "fig7" {
		points, err := experiments.Figure7(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderFigure7(points))
	}
	if want == "all" || want == "fig8" || want == "table2" {
		results, err := experiments.Figure8Table2(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderFigure8Table2(results))
	}
	if want == "all" || want == "table3" {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderTable3(rows))
	}
	if want == "all" || want == "table4" {
		rows, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderTable4(rows))
	}
	if want == "all" || want == "fig9" {
		results, err := experiments.Figure9(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderFigure9(results))
	}
	if want == "all" || want == "scaleout" {
		run := experiments.ScaleOut
		if *parallel {
			run = experiments.ParallelScaleOut
		}
		points, err := run(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderScaleOut(points))
	}
	if want == "all" || want == "optimizer" {
		r, err := experiments.MeasureOptimizerImpact(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderOptimizerImpact(r))
	}
	if want == "all" || want == "loadcurve" {
		run := experiments.LoadLatencyCurve
		if *parallel {
			run = experiments.LoadLatencyCurveParallel
		}
		points, err := run(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderLoadCurve(points))
	}
	if want == "all" || want == "nicclasses" {
		results, err := experiments.SmartNICClasses(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderNICClasses(results))
	}
	if want == "all" || want == "ablations" {
		results, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderAblations(results))
	}
	if want == "all" || want == "breakdown" {
		rep, err := experiments.LatencyBreakdown(cfg)
		if err != nil {
			return err
		}
		out(experiments.RenderLatencyBreakdown(rep))
		if *traceOut != "" {
			if err := obs.WriteChromeTraceFile(*traceOut, rep.Requests); err != nil {
				return err
			}
			fmt.Printf("lnic-bench: wrote Chrome trace (%d requests) to %s\n",
				len(rep.Requests), *traceOut)
		}
	}
	if want == "chaos" {
		chCfg := experiments.DefaultChaos()
		if *short || *quick {
			chCfg = experiments.QuickChaos()
		}
		runChaos := experiments.Chaos
		if *parallel {
			runChaos = experiments.ChaosParallel
		}
		rep, err := runChaos(cfg, chCfg)
		if err != nil {
			return err
		}
		out(experiments.RenderChaos(rep))
		if rep.SLO != nil {
			path := *sloOut
			if path == "" {
				path = "SLO_chaos.json"
			}
			data, err := rep.SLO.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("lnic-bench: wrote SLO report (%d samples) to %s\n",
				len(rep.SLO.Samples), path)
		}
		if *traceOut != "" {
			if err := obs.WriteChromeTraceFileWithMarks(*traceOut, rep.Requests, rep.Marks); err != nil {
				return err
			}
			fmt.Printf("lnic-bench: wrote Chrome trace (%d requests, %d fault marks) to %s\n",
				len(rep.Requests), len(rep.Marks), *traceOut)
		}
	}
	if want == "tenants" {
		tnCfg := experiments.DefaultTenants()
		if *short || *quick {
			tnCfg = experiments.QuickTenants()
		}
		runTenants := experiments.Tenants
		if *parallel {
			runTenants = experiments.TenantsParallel
		}
		rep, err := runTenants(cfg, tnCfg)
		if err != nil {
			return err
		}
		out(experiments.RenderTenants(rep))
		if err := benchReport(*benchOut, "BENCH_tenants.json", "", rep.Bench(), "", nil); err != nil {
			return err
		}
		if rep.SLO != nil {
			path := *sloOut
			if path == "" {
				path = "SLO_tenants.json"
			}
			data, err := rep.SLO.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("lnic-bench: wrote SLO report (%d samples) to %s\n",
				len(rep.SLO.Samples), path)
		}
		if !rep.Isolated {
			return fmt.Errorf("tenants: isolation bound violated (interactive p99 during burst %v > %v, final burn %.2fx)",
				rep.DuringP99, rep.IsolationP99, rep.FinalBurn)
		}
	}
	if want == "skew" {
		skCfg := experiments.DefaultSkew()
		if *short || *quick {
			skCfg = experiments.QuickSkew()
		}
		runSkew := experiments.Skew
		if *parallel {
			runSkew = experiments.SkewParallel
		}
		rep, err := runSkew(cfg, skCfg)
		if err != nil {
			return err
		}
		out(experiments.RenderSkew(rep))
		// Latencies are virtual-clock and thus machine-independent;
		// guard every policy's p99 directly, no normalization needed.
		if err := benchReport(*benchOut, "BENCH_skew.json", *benchGuard, rep.Bench(),
			"skew p99s within 25%", func(baseline, current benchio.Report) error {
				return benchio.GuardLatency(baseline, current, 0.25, "skew/")
			}); err != nil {
			return err
		}
		if !rep.Affine {
			return fmt.Errorf("skew: affinity verdict not met (pinned+mig must beat rr on p99 and warm-hit rate)")
		}
	}
	if want == "boundary" {
		bdCfg := experiments.DefaultBoundary()
		if *short || *quick {
			bdCfg = experiments.QuickBoundary()
		}
		runBoundary := experiments.Boundary
		if *parallel {
			runBoundary = experiments.BoundaryParallel
		}
		rep, err := runBoundary(cfg, bdCfg)
		if err != nil {
			return err
		}
		out(experiments.RenderBoundary(rep))
		// Latencies are virtual-clock and thus machine-independent;
		// guard every per-policy and per-phase p99 directly.
		if err := benchReport(*benchOut, "BENCH_boundary.json", *benchGuard, rep.Bench(),
			"boundary p99s within 25%", func(baseline, current benchio.Report) error {
				return benchio.GuardLatency(baseline, current, 0.25, "boundary/")
			}); err != nil {
			return err
		}
		if !rep.Pareto {
			return fmt.Errorf("boundary: Pareto verdict not met (dynamic must match the better static tail per phase and burn less NIC-core·time than static-nic)")
		}
	}
	if want == "rpcbench" {
		rbCfg := experiments.DefaultRPCBench()
		if *short || *quick {
			rbCfg = experiments.QuickRPCBench()
		}
		rep, err := experiments.RPCBench(rbCfg, *seed)
		if err != nil {
			return err
		}
		out(experiments.RenderRPCBench(rep))
		if err := benchReport(*benchOut, "BENCH_rpc.json", "", rep, "", nil); err != nil {
			return err
		}
	}
	if want == "lambdabench" {
		lbCfg := experiments.DefaultLambdaBench()
		if *short || *quick {
			lbCfg = experiments.QuickLambdaBench()
		}
		rep, err := experiments.LambdaBench(lbCfg)
		if err != nil {
			return err
		}
		out(experiments.RenderLambdaBench(rep))
		if err := benchReport(*benchOut, "BENCH_lambda.json", "", rep, "", nil); err != nil {
			return err
		}
	}
	if want == "rdmabench" {
		rbCfg := experiments.DefaultRdmaBench()
		if *short || *quick {
			rbCfg = experiments.QuickRdmaBench()
		}
		rep, err := experiments.RdmaBench(cfg, rbCfg)
		if err != nil {
			return err
		}
		out(experiments.RenderRdmaBench(rep))
		// All rates are virtual-clock and thus machine-independent;
		// every kvget and large row is guarded, normalized to the
		// single-client lambda baseline.
		if err := benchReport(*benchOut, "BENCH_rdma.json", *benchGuard, rep,
			"rdmabench within 20%", func(baseline, current benchio.Report) error {
				return benchio.Guard(baseline, current, "kvget/lambda/c1", 0.20, "kvget/", "large/")
			}); err != nil {
			return err
		}
	}
	if want == "simbench" {
		sbCfg := experiments.DefaultSimBench()
		if *short || *quick {
			sbCfg = experiments.QuickSimBench()
		}
		rep, err := experiments.SimBench(cfg, sbCfg)
		if err != nil {
			return err
		}
		out(experiments.RenderSimBench(rep))
		// Guard only the single-thread rows: raw rates are
		// normalized to this run's sched/heap, so the check holds
		// across machines; domain-scaling rows depend on the core
		// count and are recorded, not gated.
		if err := benchReport(*benchOut, "BENCH_sim.json", *benchGuard, rep,
			"simbench within 20%", func(baseline, current benchio.Report) error {
				return benchio.Guard(baseline, current, "sched/heap", 0.20, "sched/", "timers/")
			}); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return nil
}

// benchReport is the shared artifact wiring every benchmark-producing
// experiment goes through: write the report to the -bench-out path
// (falling back to the experiment's default filename), then, when
// -bench-guard names a committed baseline and the experiment supplies
// a check, fail the run on regression. okMsg describes the passing
// guard, e.g. "skew p99s within 25%".
func benchReport(outPath, fallback, guardPath string, rep benchio.Report,
	okMsg string, check func(baseline, current benchio.Report) error) error {
	if outPath == "" {
		outPath = fallback
	}
	if err := benchio.WriteJSON(outPath, rep); err != nil {
		return err
	}
	fmt.Printf("lnic-bench: wrote %d benchmark results to %s\n",
		len(rep.Results), outPath)
	if guardPath == "" || check == nil {
		return nil
	}
	baseline, err := benchio.ReadJSON(guardPath)
	if err != nil {
		return err
	}
	if err := check(baseline, rep); err != nil {
		return err
	}
	fmt.Printf("lnic-bench: %s of baseline %s\n", okMsg, guardPath)
	return nil
}
