package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCompileSubcommand(t *testing.T) {
	if err := run([]string{"compile"}); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestArtifactsSubcommand(t *testing.T) {
	if err := run([]string{"artifacts"}); err != nil {
		t.Fatalf("artifacts: %v", err)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
}

func TestCompileMCLSubcommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lambda.mcl")
	src := `
		object buf[16];
		func handler() int {
			buf[0] = 'A';
			emit(buf, 0, 1);
			return STATUS_FORWARD;
		}
	`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compile-mcl", path}); err != nil {
		t.Fatalf("compile-mcl: %v", err)
	}
	// Static assertion failure surfaces as an error.
	bad := filepath.Join(dir, "bad.mcl")
	if err := os.WriteFile(bad, []byte(`
		object tiny[2];
		func handler() int { tiny[50] = 1; return 1; }
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compile-mcl", bad}); err == nil {
		t.Error("statically invalid lambda accepted")
	}
	// Missing file.
	if err := run([]string{"compile-mcl", filepath.Join(dir, "nope.mcl")}); err == nil {
		t.Error("missing file accepted")
	}
	// Missing argument.
	if err := run([]string{"compile-mcl"}); err == nil {
		t.Error("missing argument accepted")
	}
}

func TestHealthSubcommand(t *testing.T) {
	// Full loop: kill worker 0, wait for detection, print the table.
	if err := run([]string{"health", "-workers", "3", "-interval", "20ms", "-kill", "0"}); err != nil {
		t.Fatalf("health: %v", err)
	}
	// No kill: everyone stays alive.
	if err := run([]string{"health", "-workers", "2", "-interval", "20ms", "-kill", "-1", "-wait", "2s"}); err != nil {
		t.Fatalf("health -kill -1: %v", err)
	}
	// Out-of-range victim.
	if err := run([]string{"health", "-workers", "2", "-kill", "5"}); err == nil {
		t.Error("out-of-range kill index accepted")
	}
}

func TestPlaceSubcommand(t *testing.T) {
	if err := run([]string{"place", "-rounds", "6"}); err != nil {
		t.Fatalf("place: %v", err)
	}
	// A store too small for any workload host-pins everything; the
	// demo still runs (all-host is a valid placement).
	if err := run([]string{"place", "-rounds", "2", "-store", "64"}); err != nil {
		t.Fatalf("place -store 64: %v", err)
	}
	if err := run([]string{"place", "-rounds", "1"}); err == nil {
		t.Error("single-round curve accepted")
	}
}

func TestInvokeBadWorkload(t *testing.T) {
	if err := run([]string{"invoke", "-workload", "bogus", "-n", "0"}); err == nil {
		t.Error("unknown workload accepted")
	}
}
