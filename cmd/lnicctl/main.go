// Command lnicctl is the λ-NIC control CLI.
//
// Subcommands:
//
//	invoke   -gateway ADDR -workload NAME [-n COUNT] [-key K] [-page P]
//	         invoke a deployed lambda through the gateway and print
//	         latency statistics
//	compile  compile the benchmark workload set and print the optimizer
//	         trajectory (Figure 9)
//	artifacts
//	         print the per-backend deployment artifact model (Table 4)
//	disasm   compile the benchmark workload set and print the optimized
//	         firmware's disassembly
//	compile-mcl FILE
//	         compile a lambda written in the C-like source language and
//	         print its size, disassembly, and static-assertion results
//	place    [-rounds N] [-store N] [-margin F]
//	         run the dynamic NIC/host placement engine through an
//	         in-memory diurnal load curve: every compiled workload
//	         starts on the NIC, the load ramp inflates observed NIC
//	         latency, and the engine migrates the worst-fitting
//	         lambdas to the host at peak and brings them back at
//	         trough; prints per-round scores, the move log, and the
//	         lnic_placement_* metric families
//	health   [-workers N] [-interval D] [-kill I] [-wait D]
//	         run an in-memory deployment with the failure-detection loop
//	         enabled, optionally crash-stop one worker, and print each
//	         worker's liveness, last-heartbeat age, and suspicion level
//	         plus the placement recorded in the control store
//	top      -targets m2=host:port,m3=host:port [-interval D] [-tenant T]
//	         scrape every daemon's monitoring endpoint twice, D apart,
//	         and print per-(nic, workload, tenant) request rates,
//	         errors, sheds, one-sided fast-path GET rates (1SIDED/S,
//	         from lnic_worker_bypass_total), and latency percentiles
//	         computed from the deltas; -tenant narrows the view to one
//	         tenant's rows including its gateway admission sheds
//	slo      -targets ... [-interval D] [-availability T] [-p99 D]
//	         [-p99-target T] [-tenant T]
//	         scrape the fleet twice and grade the interval against
//	         availability and p99-latency objectives: good fraction,
//	         error-budget burn rate, met/violated; -tenant grades one
//	         tenant's traffic only, counting its admission sheds as
//	         availability bad events
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"lambdanic"
	"lambdanic/internal/core"
	"lambdanic/internal/experiments"
	"lambdanic/internal/healthd"
	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
	"lambdanic/internal/mcl"
	"lambdanic/internal/metrics"
	"lambdanic/internal/monitor"
	"lambdanic/internal/placement"
	"lambdanic/internal/telemetry"
	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lnicctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: lnicctl <invoke|compile|artifacts|health|place|top|slo> [flags]")
	}
	switch args[0] {
	case "invoke":
		return invoke(args[1:])
	case "health":
		return health(args[1:])
	case "place":
		return place(args[1:])
	case "top":
		return top(args[1:])
	case "slo":
		return slo(args[1:])
	case "compile":
		return compile()
	case "artifacts":
		return artifacts()
	case "disasm":
		return disasm()
	case "compile-mcl":
		return compileMCL(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// health runs the failure-detection loop end to end on an in-memory
// deployment: workers heartbeat into the control store, an optionally
// crash-stopped worker goes silent, the detector walks alive → suspect
// → dead, and the manager evicts it from the placement. The final
// table shows each worker's liveness, last-heartbeat age, and phi
// score, followed by the placement read back from the control store.
func health(args []string) error {
	fs := flag.NewFlagSet("health", flag.ContinueOnError)
	workers := fs.Int("workers", 3, "number of worker nodes")
	interval := fs.Duration("interval", 25*time.Millisecond, "heartbeat interval")
	kill := fs.Int("kill", 0, "crash-stop this worker index (-1: leave all alive)")
	wait := fs.Duration("wait", 10*time.Second, "detection deadline")
	seed := fs.Int64("seed", 42, "network seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *kill >= *workers {
		return fmt.Errorf("worker index %d out of range (0..%d)", *kill, *workers-1)
	}

	d, err := lambdanic.NewDeployment(lambdanic.DeploymentConfig{
		Workers: *workers, Seed: *seed,
		Health: true, HealthInterval: *interval,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	w := workloads.WebServer()
	if err := d.Deploy(w); err != nil {
		return err
	}

	// Wait until every worker has beaten at least once so the detector
	// knows the whole fleet before we start killing it.
	deadline := time.Now().Add(*wait)
	for time.Now().Before(deadline) && len(d.HealthReport()) < *workers {
		time.Sleep(*interval / 2)
	}

	if *kill >= 0 {
		if err := d.KillWorker(*kill); err != nil {
			return err
		}
		victim := fmt.Sprintf("m%d", *kill+2)
		fmt.Printf("crash-stopped %s; waiting for the detector...\n", victim)
		for time.Now().Before(deadline) && d.Health().Status(victim) != healthd.StatusDead {
			time.Sleep(*interval / 2)
		}
		if d.Health().Status(victim) != healthd.StatusDead {
			return fmt.Errorf("%s not declared dead within %s", victim, *wait)
		}
	}

	fmt.Printf("%-8s %-8s %5s %5s %12s %8s\n", "WORKER", "STATUS", "SEQ", "LOAD", "LAST-BEAT", "PHI")
	for _, h := range d.HealthReport() {
		fmt.Printf("%-8s %-8s %5d %5d %12s %8.2f\n",
			h.Worker, h.Status, h.Seq, h.Load, h.Age.Round(time.Millisecond), h.Phi)
	}
	p, err := d.Manager().Placement(w.Name)
	if err != nil {
		return err
	}
	fmt.Printf("placement %s (id %d): %v\n", p.Workload, p.ID, p.Workers)
	fmt.Printf("gateway live workers: %d\n", d.Gateway().LiveWorkers())
	return nil
}

// instantFabric is the place demo's migration fabric: warm-up and
// drain complete immediately, so every decision lands within the
// round that issued it.
type instantFabric struct{}

func (instantFabric) Warm(_ string, _ placement.Location, ready func())    { ready() }
func (instantFabric) Cutover(string, placement.Location)                   {}
func (instantFabric) Drain(_ string, _ placement.Location, drained func()) { drained() }

// place drives the placement engine through a scripted diurnal load
// curve on an in-memory fleet. Observed NIC latency inflates with the
// load (the NPU pool serializes under queueing) while the deep host
// pool keeps its interpreter-speed baseline, so the engine evacuates
// the NIC at peak and repatriates at trough — the same control loop
// the boundary experiment measures, inspectable one round at a time.
func place(args []string) error {
	fs := flag.NewFlagSet("place", flag.ContinueOnError)
	rounds := fs.Int("rounds", 8, "control-loop rounds across the load curve")
	store := fs.Int("store", 16384, "per-core NIC instruction store budget")
	margin := fs.Float64("margin", 0.15, "hysteresis margin before a move is issued")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rounds < 2 {
		return fmt.Errorf("-rounds %d: need at least 2", *rounds)
	}

	eng := placement.New(placement.Config{
		InstrStorePerCore: *store,
		Margin:            *margin,
		LatencyAlpha:      1, // the demo feeds exact observations, not noisy samples
		MinDwell:          time.Second,
		MaxMoves:          1, // show the severity ordering one move at a time
	})
	type demoWL struct {
		name     string
		nicBase  time.Duration // unloaded NPU service time
		hostBase time.Duration // interpreter-path service time
	}
	var demo []demoWL
	for _, w := range workloads.DefaultSet() {
		exe, _, err := workloads.CompileOptimized([]*workloads.Workload{w}, workloads.NaiveProgramTarget)
		if err != nil {
			return err
		}
		fp := exe.Footprint()
		demo = append(demo, demoWL{
			name:     w.Name,
			nicBase:  time.Duration(fp.Instructions) * 2 * time.Nanosecond,
			hostBase: time.Duration(fp.Instructions) * 19 * time.Nanosecond,
		})
		eng.Register(w.Name, fp, placement.LocNIC)
	}
	reg := monitor.NewRegistry()
	if err := eng.EnableMetrics(reg); err != nil {
		return err
	}

	var now time.Duration
	coord := placement.NewCoordinator(eng, instantFabric{}, func() time.Duration { return now })

	const interval = 2 * time.Second
	fmt.Printf("%d workloads on a %d-instruction store, %d rounds, margin %.2f\n\n",
		len(demo), *store, *rounds, *margin)
	for i := 0; i < *rounds; i++ {
		now = time.Duration(i) * interval
		// Triangle diurnal curve: ramp 0.2 -> 2.0 -> 0.2 NIC load; the
		// host pool idles at 0.1 throughout.
		half := float64(*rounds-1) / 2
		load := 0.2 + 1.8*(1-abs(float64(i)-half)/half)
		eng.ObserveLoad(load, 0.1)
		for _, w := range demo {
			// Queueing inflates the serialized NPU path quadratically
			// with load; the host baseline holds.
			nicObs := time.Duration(float64(w.nicBase) * (1 + 4*load*load))
			eng.ObserveLatency(w.name, placement.LocNIC, nicObs)
			eng.ObserveLatency(w.name, placement.LocHost, w.hostBase)
		}
		moves := coord.Run(now)
		fmt.Printf("round %d (t=%s, nic load %.2f):\n", i, now, load)
		for _, s := range eng.Scores() {
			fmt.Printf("  %-18s %-9s score %+6.2f  fit %+5.2f  latgain %+5.2f  nic %-10s host %s\n",
				s.Workload, s.Loc, s.NICScore, s.Fit, s.LatencyGain, s.NICLatency, s.HostLatency)
		}
		for _, m := range moves {
			fmt.Printf("  -> move %s %s->%s (%s)\n", m.Workload, m.From, m.To, m.Reason)
		}
	}

	fmt.Printf("\nmove log (%d migrations):\n", eng.Migrations())
	for _, m := range eng.History() {
		fmt.Printf("  @%-6s %-18s %s->%s score %+.2f\n", m.At, m.Workload, m.From, m.To, m.Score)
	}
	fmt.Println("\nmetric families:")
	for _, line := range strings.Split(reg.Render(), "\n") {
		if strings.Contains(line, "lnic_placement") && !strings.HasPrefix(line, "# TYPE") {
			fmt.Println("  " + line)
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// scrapeTwice collects the fleet's metrics pages at the ends of one
// observation interval; every fleet number is a delta between the two.
func scrapeTwice(spec string, interval time.Duration) (prev, cur telemetry.FleetSnapshot, err error) {
	if spec == "" {
		return prev, cur, fmt.Errorf("missing -targets (e.g. -targets m2=127.0.0.1:9102,gw=127.0.0.1:9100)")
	}
	targets, err := telemetry.ParseTargets(spec)
	if err != nil {
		return prev, cur, err
	}
	c := telemetry.NewCollector(targets)
	ctx := context.Background()
	prev = c.Collect(ctx)
	time.Sleep(interval)
	cur = c.Collect(ctx)
	return prev, cur, nil
}

// top is the live fleet view: per-(nic, workload) request rates,
// errors, and latency percentiles over one scrape interval.
func top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	targets := fs.String("targets", "", "comma-separated nic=host:port scrape targets (-metrics endpoints)")
	interval := fs.Duration("interval", 2*time.Second, "observation interval between the two scrapes")
	tenantName := fs.String("tenant", "", "show only this tenant's rows (and its admission sheds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prev, cur, err := scrapeTwice(*targets, *interval)
	if err != nil {
		return err
	}
	rows := telemetry.FilterTenant(telemetry.FleetRows(prev, cur, *interval), *tenantName)
	fmt.Print(telemetry.RenderTop(rows, *interval))
	return nil
}

// slo grades one observation interval of fleet traffic against
// availability and tail-latency objectives.
func slo(args []string) error {
	fs := flag.NewFlagSet("slo", flag.ContinueOnError)
	targets := fs.String("targets", "", "comma-separated nic=host:port scrape targets (-metrics endpoints)")
	interval := fs.Duration("interval", 2*time.Second, "observation interval between the two scrapes")
	availability := fs.Float64("availability", 0.999, "availability objective target (0..1)")
	p99 := fs.Duration("p99", time.Millisecond, "latency objective threshold")
	p99Target := fs.Float64("p99-target", 0.99, "fraction of requests that must finish within -p99")
	tenantName := fs.String("tenant", "", "grade only this tenant's traffic (sheds count against availability)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prev, cur, err := scrapeTwice(*targets, *interval)
	if err != nil {
		return err
	}
	statuses, err := telemetry.FleetSLOTenant(prev, cur, []telemetry.Objective{
		{Name: "availability", Kind: telemetry.ObjectiveAvailability, Target: *availability},
		{Name: "p99-latency", Kind: telemetry.ObjectiveLatency, Target: *p99Target, Threshold: *p99},
	}, *tenantName)
	if err != nil {
		return err
	}
	fmt.Print(telemetry.RenderSLO(statuses, *interval))
	return nil
}

func disasm() error {
	naive, err := workloads.BuildNaiveProgram(workloads.DefaultSet(), workloads.NaiveProgramTarget)
	if err != nil {
		return err
	}
	opt, _, err := mcc.Optimize(naive, mcc.AllPasses())
	if err != nil {
		return err
	}
	fmt.Print(opt.Disassemble())
	return nil
}

func compileMCL(args []string) error {
	fs := flag.NewFlagSet("compile-mcl", flag.ContinueOnError)
	entry := fs.String("entry", "", "entry function (defaults to the first function)")
	id := fs.Uint("id", 100, "workload id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: lnicctl compile-mcl [-entry F] [-id N] FILE")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	file, err := mcl.Parse(string(src))
	if err != nil {
		return err
	}
	entryName := *entry
	if entryName == "" {
		if len(file.Funcs) == 0 {
			return fmt.Errorf("no functions in %s", fs.Arg(0))
		}
		entryName = file.Funcs[0].Name
	}
	spec, err := mcl.CompileLambda(entryName, uint32(*id), entryName, string(src), nil)
	if err != nil {
		return err
	}
	prog, err := matchlambda.Compose([]*matchlambda.LambdaSpec{spec}, matchlambda.ComposeOptions{})
	if err != nil {
		return err
	}
	if violations := mcc.StaticCheck(prog); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v.Error())
		}
		return fmt.Errorf("%d static assertion(s) failed", len(violations))
	}
	opt, passes, err := mcc.Optimize(prog, mcc.AllPasses())
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFigure9(passes))
	fmt.Print(opt.Disassemble())
	return nil
}

func invoke(args []string) error {
	fs := flag.NewFlagSet("invoke", flag.ContinueOnError)
	gatewayAddr := fs.String("gateway", "127.0.0.1:8080", "gateway UDP address")
	name := fs.String("workload", "web", "workload: web, kvget, kvset, image")
	count := fs.Int("n", 1, "number of requests")
	key := fs.Int("key", 0, "key index for the kv clients")
	page := fs.Int("page", 0, "page id for the web server")
	imgW := fs.Int("image-width", 64, "image width")
	imgH := fs.Int("image-height", 64, "image height")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w *workloads.Workload
	var seedIdx int
	switch *name {
	case "web":
		w, seedIdx = workloads.WebServer(), *page
	case "kvget":
		w, seedIdx = workloads.KVGetClient(), *key
	case "kvset":
		w, seedIdx = workloads.KVSetClient(), *key
	case "image":
		w, seedIdx = workloads.ImageTransformer(*imgW, *imgH), 0
	default:
		return fmt.Errorf("unknown workload %q", *name)
	}

	addr, err := net.ResolveUDPAddr("udp", *gatewayAddr)
	if err != nil {
		return err
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ep := transport.NewEndpoint(conn, nil, transport.WithTimeout(*timeout), transport.WithRetries(3))
	defer ep.Close()

	var lat metrics.Sample
	for i := 0; i < *count; i++ {
		payload := w.MakeRequest(seedIdx + i)
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), *timeout*4)
		resp, err := ep.Call(ctx, addr, w.ID, payload)
		cancel()
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		lat.AddDuration(time.Since(start))
		if i == 0 {
			preview := resp
			if len(preview) > 80 {
				preview = preview[:80]
			}
			fmt.Printf("response (%d bytes): %q\n", len(resp), preview)
		}
	}
	fmt.Printf("%d requests to %s: %s\n", *count, w.Name, lat.Summarize())
	return nil
}

func compile() error {
	exe, results, err := workloads.CompileOptimized(workloads.DefaultSet(), workloads.NaiveProgramTarget)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFigure9(results))
	fp := exe.Footprint()
	fmt.Printf("linked image: %d instructions, %d bytes of NIC memory (%.0f%% in fast levels)\n",
		fp.Instructions, fp.TotalMemoryBytes(), 100*fp.FastFraction())
	return nil
}

func artifacts() error {
	exe, _, err := workloads.CompileOptimized(workloads.DefaultSet(), workloads.NaiveProgramTarget)
	if err != nil {
		return err
	}
	fmt.Println("Deployment artifacts (Table 4 model):")
	for _, kind := range []core.BackendKind{core.KindLambdaNIC, core.KindBareMetal, core.KindContainer} {
		a := core.BuildArtifact(kind, exe.StaticInstructions())
		fmt.Printf("  %-12s %6.1f MiB  startup %5.1fs (compile %.1fs, transfer %.3fs, install %.1fs, boot %.1fs)\n",
			a.Kind, a.SizeMiB, a.StartupTime().Seconds(),
			a.Compile.Seconds(), a.Transfer.Seconds(), a.Install.Seconds(), a.Boot.Seconds())
	}
	return nil
}
